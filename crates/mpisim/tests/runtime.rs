//! Integration tests for the mpisim runtime: point-to-point semantics,
//! collectives, communicator construction, virtual-time behaviour, tool
//! events, and failure handling.

use machine::{presets, LinkModel, NetworkModel, Topology, VTime, Work};
use mpisim::{MpiEvent, Src, TagSel, Tool, WorldBuilder};
use parking_lot::Mutex;
use std::sync::Arc;

/// A machine with a deterministic, non-trivial network and no noise, so
/// timing assertions are exact.
fn lab_machine() -> machine::MachineModel {
    let mut m = presets::ideal();
    m.name = "lab".to_string();
    m.topology = Topology::block(4);
    m.network = NetworkModel {
        intra_node: LinkModel {
            latency: 1e-6,
            bandwidth: 1e9,
            overhead: 1e-7,
        },
        inter_node: LinkModel {
            latency: 1e-5,
            bandwidth: 1e8,
            overhead: 1e-6,
        },
    };
    m
}

// ---------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------

#[test]
fn ring_pass_accumulates() {
    let n = 8;
    let report = WorldBuilder::new(n)
        .run(|p| {
            let world = p.world();
            let rank = p.world_rank();
            if rank == 0 {
                world.send(p, 1, 0, &[1u64]);
                let msg = world.recv::<u64>(p, Src::Rank(n - 1), TagSel::Is(0));
                msg.data[0]
            } else {
                let msg = world.recv::<u64>(p, Src::Rank(rank - 1), TagSel::Is(0));
                let next = (rank + 1) % n;
                world.send(p, next, 0, &[msg.data[0] + 1]);
                0
            }
        })
        .unwrap();
    assert_eq!(report.results[0], n as u64);
}

#[test]
fn recv_metadata_and_virtual_payloads() {
    let report = WorldBuilder::new(2)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                world.send_virtual::<f64>(p, 1, 7, 1000);
                (0, 0)
            } else {
                let msg = world.recv::<f64>(p, Src::Any, TagSel::Any);
                assert!(msg.data.is_empty(), "virtual payload carries no data");
                assert_eq!(msg.src, 0);
                assert_eq!(msg.tag, 7);
                (msg.elems, msg.logical_bytes as usize)
            }
        })
        .unwrap();
    assert_eq!(report.results[1], (1000, 8000));
}

#[test]
fn p2p_transfer_time_matches_model() {
    // Rank 0 sends 1e6 bytes intra-node: o + L + bytes/bw + o on top of the
    // receiver's clock (receiver posts at t=0, sender departs at o).
    let m = lab_machine();
    let report = WorldBuilder::new(2)
        .machine(m)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                world.send_virtual::<u8>(p, 1, 0, 1_000_000);
            } else {
                let _ = world.recv::<u8>(p, Src::Rank(0), TagSel::Is(0));
            }
            p.now()
        })
        .unwrap();
    // sender: o = 1e-7. arrival = 1e-7 + 1e-6 + 1e-3. recv exit = arrival + 1e-7.
    let expect = 1e-7 + 1e-6 + 1e-3 + 1e-7;
    let got = report.results[1].as_secs_f64();
    assert!((got - expect).abs() < 1e-12, "got {got}, expected {expect}");
    // Sender's clock only advanced by its overhead.
    assert!((report.results[0].as_secs_f64() - 1e-7).abs() < 1e-15);
}

#[test]
fn inter_node_link_is_slower() {
    let m = lab_machine(); // 4 ranks per node
    let report = WorldBuilder::new(8)
        .machine(m)
        .run(|p| {
            let world = p.world();
            match p.world_rank() {
                0 => {
                    // 0 -> 1 intra-node, 0 -> 4 inter-node, same size.
                    world.send_virtual::<u8>(p, 1, 0, 100_000);
                    world.send_virtual::<u8>(p, 4, 0, 100_000);
                    VTime::ZERO
                }
                1 | 4 => {
                    let _ = world.recv::<u8>(p, Src::Rank(0), TagSel::Is(0));
                    p.now()
                }
                _ => VTime::ZERO,
            }
        })
        .unwrap();
    let intra = report.results[1];
    let inter = report.results[4];
    assert!(
        inter > intra * 5,
        "inter-node {inter} should be much slower than intra-node {intra}"
    );
}

#[test]
fn non_overtaking_same_source_and_tag() {
    let report = WorldBuilder::new(2)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                for i in 0..100u32 {
                    world.send(p, 1, 3, &[i]);
                }
                Vec::new()
            } else {
                (0..100)
                    .map(|_| world.recv::<u32>(p, Src::Rank(0), TagSel::Is(3)).data[0])
                    .collect::<Vec<u32>>()
            }
        })
        .unwrap();
    assert_eq!(report.results[1], (0..100).collect::<Vec<u32>>());
}

#[test]
fn tag_selective_receive() {
    let report = WorldBuilder::new(2)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                world.send(p, 1, 1, &[10u32]);
                world.send(p, 1, 2, &[20u32]);
                0
            } else {
                // Receive tag 2 first even though tag 1 was sent first.
                let b = world.recv::<u32>(p, Src::Rank(0), TagSel::Is(2)).data[0];
                let a = world.recv::<u32>(p, Src::Rank(0), TagSel::Is(1)).data[0];
                (b as usize) * 100 + a as usize
            }
        })
        .unwrap();
    assert_eq!(report.results[1], 2010);
}

#[test]
fn isend_irecv_roundtrip() {
    let report = WorldBuilder::new(2)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                let req = world.isend(p, 1, 0, &[5u8, 6]);
                req.wait(p);
                0
            } else {
                let req = world.irecv::<u8>(p, Src::Rank(0), TagSel::Is(0));
                let msg = req.wait(p);
                msg.data.iter().map(|&b| b as usize).sum()
            }
        })
        .unwrap();
    assert_eq!(report.results[1], 11);
}

#[test]
fn sendrecv_exchange_between_neighbors() {
    let n = 6;
    let report = WorldBuilder::new(n)
        .run(|p| {
            let world = p.world();
            let rank = p.world_rank();
            let right = (rank + 1) % n;
            let left = (rank + n - 1) % n;
            let got = world.sendrecv(p, right, 0, &[rank as u32], Src::Rank(left), TagSel::Is(0));
            got.data[0]
        })
        .unwrap();
    for rank in 0..n {
        assert_eq!(report.results[rank], ((rank + n - 1) % n) as u32);
    }
}

// ---------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------

#[test]
fn barrier_synchronizes_clocks() {
    let report = WorldBuilder::new(4)
        .run(|p| {
            // Skewed entry: rank r computes r seconds.
            p.advance_secs(p.world_rank() as f64);
            let world = p.world();
            world.barrier(p);
            p.now()
        })
        .unwrap();
    let t0 = report.results[0];
    assert!(
        report.results.iter().all(|&t| t == t0),
        "{:?}",
        report.results
    );
    assert!(t0 >= VTime::from_secs_f64(3.0), "exit at max entry");
}

#[test]
fn bcast_delivers_to_all() {
    let report = WorldBuilder::new(5)
        .run(|p| {
            let world = p.world();
            let data = (p.world_rank() == 2).then(|| vec![3.5f64, 4.5]);
            world.bcast(p, 2, data)
        })
        .unwrap();
    for r in report.results {
        assert_eq!(r, vec![3.5, 4.5]);
    }
}

#[test]
fn bcast_virtual_distributes_count() {
    let report = WorldBuilder::new(4)
        .run(|p| {
            let world = p.world();
            let n = (p.world_rank() == 0).then_some(12345);
            world.bcast_virtual::<f64>(p, 0, n)
        })
        .unwrap();
    assert!(report.results.iter().all(|&n| n == 12345));
}

#[test]
fn scatter_gather_roundtrip() {
    let n = 4;
    let report = WorldBuilder::new(n)
        .run(|p| {
            let world = p.world();
            let data = (p.world_rank() == 0).then(|| (0..16u32).collect::<Vec<u32>>());
            let mine = world.scatter(p, 0, data);
            assert_eq!(mine.len(), 4);
            let doubled: Vec<u32> = mine.iter().map(|x| x * 2).collect();
            world.gather(p, 0, doubled)
        })
        .unwrap();
    assert_eq!(
        report.results[0],
        (0..16u32).map(|x| x * 2).collect::<Vec<u32>>()
    );
    assert!(report.results[1].is_empty());
}

#[test]
fn scatterv_uneven_chunks() {
    let report = WorldBuilder::new(3)
        .run(|p| {
            let world = p.world();
            let chunks = (p.world_rank() == 1).then(|| vec![vec![1u8], vec![2, 3], vec![4, 5, 6]]);
            world.scatterv(p, 1, chunks)
        })
        .unwrap();
    assert_eq!(report.results[0], vec![1]);
    assert_eq!(report.results[1], vec![2, 3]);
    assert_eq!(report.results[2], vec![4, 5, 6]);
}

#[test]
fn scatterv_virtual_counts() {
    let report = WorldBuilder::new(3)
        .run(|p| {
            let world = p.world();
            let counts = (p.world_rank() == 0).then(|| vec![10, 20, 30]);
            world.scatterv_virtual::<f64>(p, 0, counts)
        })
        .unwrap();
    assert_eq!(report.results, vec![10, 20, 30]);
}

#[test]
fn gatherv_virtual_counts_at_root() {
    let report = WorldBuilder::new(3)
        .run(|p| {
            let world = p.world();
            world.gatherv_virtual::<u32>(p, 2, p.world_rank() * 5)
        })
        .unwrap();
    assert!(report.results[0].is_empty());
    assert_eq!(report.results[2], vec![0, 5, 10]);
}

#[test]
fn allgather_everyone_sees_everything() {
    let report = WorldBuilder::new(4)
        .run(|p| {
            let world = p.world();
            world.allgather(p, vec![p.world_rank() as i64 * 10])
        })
        .unwrap();
    for r in report.results {
        assert_eq!(r, vec![vec![0], vec![10], vec![20], vec![30]]);
    }
}

#[test]
fn reduce_and_allreduce() {
    let n = 6;
    let report = WorldBuilder::new(n)
        .run(|p| {
            let world = p.world();
            let r = p.world_rank() as i64;
            let root_sum = world.reduce(p, 0, vec![r, 2 * r], |a, b| a + b);
            let all_max = world.allreduce(p, vec![r], |a, b| *a.max(b));
            (root_sum, all_max)
        })
        .unwrap();
    let expect: i64 = (0..n as i64).sum();
    assert_eq!(report.results[0].0, vec![expect, 2 * expect]);
    assert!(report.results[0].1 == vec![n as i64 - 1]);
    assert!(report.results[5].0.is_empty());
    assert_eq!(report.results[5].1, vec![n as i64 - 1]);
}

#[test]
fn scalar_allreduce_helpers() {
    let report = WorldBuilder::new(4)
        .run(|p| {
            let world = p.world();
            let x = p.world_rank() as f64 + 1.0;
            (
                world.allreduce_min_f64(p, x),
                world.allreduce_max_f64(p, x),
                world.allreduce_sum_f64(p, x),
            )
        })
        .unwrap();
    for (mn, mx, sum) in report.results {
        assert_eq!(mn, 1.0);
        assert_eq!(mx, 4.0);
        assert_eq!(sum, 10.0);
    }
}

#[test]
fn alltoall_transpose() {
    let n = 3;
    let report = WorldBuilder::new(n)
        .run(|p| {
            let world = p.world();
            let me = p.world_rank();
            // Chunk for dest j: [me*10 + j].
            let chunks: Vec<Vec<usize>> = (0..n).map(|j| vec![me * 10 + j]).collect();
            world.alltoall(p, chunks)
        })
        .unwrap();
    for (me, rows) in report.results.iter().enumerate() {
        for (src, chunk) in rows.iter().enumerate() {
            assert_eq!(chunk, &vec![src * 10 + me]);
        }
    }
}

#[test]
fn inclusive_scan() {
    let report = WorldBuilder::new(5)
        .run(|p| {
            let world = p.world();
            world.scan(p, vec![p.world_rank() as u64 + 1], |a, b| a + b)
        })
        .unwrap();
    assert_eq!(
        report.results,
        vec![vec![1], vec![3], vec![6], vec![10], vec![15]]
    );
}

#[test]
fn collective_cost_scales_with_participants() {
    // Barrier on the lab machine costs log2(p) rounds: 16 ranks should pay
    // more than 4 ranks.
    let time_for = |n: usize| {
        WorldBuilder::new(n)
            .machine(lab_machine())
            .run(|p| {
                let world = p.world();
                world.barrier(p);
                p.now()
            })
            .unwrap()
            .makespan
    };
    let t4 = time_for(4);
    let t16 = time_for(16);
    assert!(t16 > t4, "barrier(16)={t16} should exceed barrier(4)={t4}");
}

// ---------------------------------------------------------------------
// Communicator construction
// ---------------------------------------------------------------------

#[test]
fn split_into_even_odd() {
    let report = WorldBuilder::new(6)
        .run(|p| {
            let world = p.world();
            let color = (p.world_rank() % 2) as i32;
            let sub = world.split(p, Some(color), 0).unwrap();
            // Sum world ranks within each sub-communicator.
            let sum = sub.allreduce(p, vec![p.world_rank() as u64], |a, b| a + b)[0];
            (sub.size(), sub.rank(), sum)
        })
        .unwrap();
    // Evens: 0+2+4=6, odds: 1+3+5=9.
    assert_eq!(report.results[0], (3, 0, 6));
    assert_eq!(report.results[2], (3, 1, 6));
    assert_eq!(report.results[4], (3, 2, 6));
    assert_eq!(report.results[1], (3, 0, 9));
    assert_eq!(report.results[5], (3, 2, 9));
}

#[test]
fn split_with_undefined_color() {
    let report = WorldBuilder::new(4)
        .run(|p| {
            let world = p.world();
            let color = (p.world_rank() < 2).then_some(0);
            let sub = world.split(p, color, 0);
            sub.map(|c| c.size())
        })
        .unwrap();
    assert_eq!(report.results, vec![Some(2), Some(2), None, None]);
}

#[test]
fn split_key_reorders_ranks() {
    let report = WorldBuilder::new(4)
        .run(|p| {
            let world = p.world();
            // Reverse order via descending keys.
            let key = -(p.world_rank() as i32);
            let sub = world.split(p, Some(0), key).unwrap();
            sub.rank()
        })
        .unwrap();
    assert_eq!(report.results, vec![3, 2, 1, 0]);
}

#[test]
fn dup_preserves_group_with_fresh_id() {
    let report = WorldBuilder::new(3)
        .run(|p| {
            let world = p.world();
            let dup = world.dup(p);
            assert_ne!(dup.id(), world.id());
            assert_eq!(dup.size(), world.size());
            assert_eq!(dup.rank(), world.rank());
            // Messages on the dup never match receives on world.
            if p.world_rank() == 0 {
                dup.send(p, 1, 0, &[9u8]);
                world.send(p, 1, 0, &[1u8]);
                0
            } else if p.world_rank() == 1 {
                let w = world.recv::<u8>(p, Src::Rank(0), TagSel::Is(0));
                let d = dup.recv::<u8>(p, Src::Rank(0), TagSel::Is(0));
                (w.data[0] as usize) * 10 + d.data[0] as usize
            } else {
                0
            }
        })
        .unwrap();
    assert_eq!(report.results[1], 19);
}

// ---------------------------------------------------------------------
// Compute, determinism, failures
// ---------------------------------------------------------------------

#[test]
fn compute_prices_work_on_ideal_machine() {
    let report = WorldBuilder::new(1)
        .run(|p| {
            p.compute(Work::flops(3e9)); // 3 s at 1 Gflop/s, no noise
            p.now()
        })
        .unwrap();
    assert_eq!(report.results[0], VTime::from_secs_f64(3.0));
}

#[test]
fn runs_are_deterministic_across_repeats() {
    let run_once = || {
        WorldBuilder::new(8)
            .machine(presets::nehalem_cluster())
            .seed(42)
            .run(|p| {
                let world = p.world();
                for step in 0..20 {
                    p.compute(Work::flops(1e7));
                    let rank = p.world_rank();
                    let n = p.world_size();
                    if rank + 1 < n {
                        world.send_virtual::<f64>(p, rank + 1, step, 100);
                    }
                    if rank > 0 {
                        let _ = world.recv::<f64>(p, Src::Rank(rank - 1), TagSel::Is(step));
                    }
                }
                world.barrier(p);
                p.now()
            })
            .unwrap()
            .results
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn different_seeds_differ_under_noise() {
    let run_with = |seed| {
        WorldBuilder::new(4)
            .machine(presets::nehalem_cluster())
            .seed(seed)
            .run(|p| {
                p.compute(Work::flops(1e9));
                p.now()
            })
            .unwrap()
            .makespan
    };
    assert_ne!(run_with(1), run_with(2));
}

#[test]
fn rank_panic_is_reported_and_world_unblocks() {
    let result = WorldBuilder::new(4).run(|p| {
        if p.world_rank() == 2 {
            panic!("deliberate failure");
        }
        // Everyone else blocks in a barrier that can never complete.
        let world = p.world();
        world.barrier(p);
    });
    match result {
        Err(mpisim::RunError::RankPanicked { rank, message }) => {
            assert_eq!(rank, 2);
            assert!(message.contains("deliberate failure"));
        }
        other => panic!("expected rank panic, got {other:?}"),
    }
}

#[test]
fn zero_ranks_rejected() {
    assert!(matches!(
        WorldBuilder::new(0).run(|_| ()),
        Err(mpisim::RunError::NoRanks)
    ));
}

#[test]
fn large_world_smoke() {
    // 456 ranks — the paper's largest convolution configuration.
    let report = WorldBuilder::new(456)
        .run(|p| {
            let world = p.world();

            world.allreduce(p, vec![1u64], |a, b| a + b)[0]
        })
        .unwrap();
    assert!(report.results.iter().all(|&s| s == 456));
}

// ---------------------------------------------------------------------
// Tool events
// ---------------------------------------------------------------------

#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<(usize, String)>>,
}

impl Tool for Recorder {
    fn on_event(&self, rank: usize, event: &MpiEvent) {
        let name = match event {
            MpiEvent::Init { .. } => "init".to_string(),
            MpiEvent::Finalize { .. } => "finalize".to_string(),
            MpiEvent::CallEnter { call, .. } => format!("enter:{}", call.name()),
            MpiEvent::CallExit { call, bytes, .. } => format!("exit:{}:{bytes}", call.name()),
            MpiEvent::SectionEnter { label, .. } => format!("sec+:{label}"),
            MpiEvent::SectionLeave { label, .. } => format!("sec-:{label}"),
            MpiEvent::Pcontrol { .. } => "pcontrol".to_string(),
            // Analyzer-layer events (SendEnqueued, RecvBlocked, ...) are
            // exercised by their own tests; keep this trace call-level.
            _ => return,
        };
        self.events.lock().push((rank, name));
    }
}

#[test]
fn tools_observe_call_events() {
    let recorder = Arc::new(Recorder::default());
    WorldBuilder::new(2)
        .tool(recorder.clone())
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                world.send(p, 1, 0, &[1u8, 2, 3]);
            } else {
                let _ = world.recv::<u8>(p, Src::Rank(0), TagSel::Is(0));
            }
            world.barrier(p);
        })
        .unwrap();
    let events = recorder.events.lock();
    let of_rank = |r: usize| -> Vec<&str> {
        events
            .iter()
            .filter(|(rank, _)| *rank == r)
            .map(|(_, n)| n.as_str())
            .collect()
    };
    assert_eq!(
        of_rank(0),
        vec![
            "init",
            "enter:MPI_Send",
            "exit:MPI_Send:3",
            "enter:MPI_Barrier",
            "exit:MPI_Barrier:0",
            "finalize"
        ]
    );
    assert_eq!(
        of_rank(1),
        vec![
            "init",
            "enter:MPI_Recv",
            "exit:MPI_Recv:3",
            "enter:MPI_Barrier",
            "exit:MPI_Barrier:0",
            "finalize"
        ]
    );
}

#[test]
fn event_timestamps_are_monotone_per_rank() {
    struct MonotoneCheck {
        last: Mutex<Vec<VTime>>,
    }
    impl Tool for MonotoneCheck {
        fn on_event(&self, rank: usize, event: &MpiEvent) {
            let mut last = self.last.lock();
            assert!(
                event.time() >= last[rank],
                "rank {rank}: event time went backwards"
            );
            last[rank] = event.time();
        }
    }
    let tool = Arc::new(MonotoneCheck {
        last: Mutex::new(vec![VTime::ZERO; 4]),
    });
    WorldBuilder::new(4)
        .machine(presets::nehalem_cluster())
        .tool(tool)
        .run(|p| {
            let world = p.world();
            for _ in 0..10 {
                p.compute(Work::flops(1e6));
                world.barrier(p);
            }
            let _ = world.allgather(p, vec![p.world_rank()]);
        })
        .unwrap();
}

#[test]
fn exscan_prefix_excluding_self() {
    let report = WorldBuilder::new(5)
        .run(|p| {
            let world = p.world();
            world.exscan(p, vec![p.world_rank() as u64 + 1], vec![0u64], |a, b| a + b)
        })
        .unwrap();
    // Rank r gets sum of 1..=r (exclusive of its own r+1).
    assert_eq!(
        report.results,
        vec![vec![0], vec![1], vec![3], vec![6], vec![10]]
    );
}

#[test]
fn reduce_scatter_block_distributes_reduction() {
    let n = 4;
    let report = WorldBuilder::new(n)
        .run(move |p| {
            let world = p.world();
            // Each rank contributes [rank, rank, ...] over n blocks of 2.
            let data = vec![p.world_rank() as i64; n * 2];
            world.reduce_scatter_block(p, data, |a, b| a + b)
        })
        .unwrap();
    let total: i64 = (0..n as i64).sum();
    for r in report.results {
        assert_eq!(r, vec![total, total]);
    }
}

#[test]
fn waitall_collects_in_request_order() {
    let report = WorldBuilder::new(3)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                // Post receives from 2 then 1; send order is 1 then 2.
                let r2 = world.irecv::<u32>(p, Src::Rank(2), TagSel::Is(0));
                let r1 = world.irecv::<u32>(p, Src::Rank(1), TagSel::Is(0));
                let msgs = mpisim::waitall(p, vec![r2, r1]);
                msgs.iter().map(|m| m.data[0]).collect::<Vec<u32>>()
            } else {
                world.send(p, 0, 0, &[p.world_rank() as u32 * 10]);
                Vec::new()
            }
        })
        .unwrap();
    assert_eq!(report.results[0], vec![20, 10]);
}

#[test]
fn pcontrol_reaches_tools() {
    let recorder = Arc::new(Recorder::default());
    WorldBuilder::new(1)
        .tool(recorder.clone())
        .run(|p| {
            p.pcontrol(3);
            p.pcontrol(-3);
        })
        .unwrap();
    let events = recorder.events.lock();
    // init, 2x Pcontrol, finalize.
    assert_eq!(events.iter().filter(|(_, n)| n == "pcontrol").count(), 2);
}

#[test]
fn request_test_completes_only_when_arrived() {
    let report = WorldBuilder::new(2)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                // Nothing sent yet: test must hand the request back.
                let req = world.irecv::<u8>(p, Src::Rank(1), TagSel::Is(0));
                let req = match req.test(p) {
                    Ok(_) => panic!("nothing was sent yet"),
                    Err(req) => req,
                };
                // Tell rank 1 to send, then spin on test until it lands.
                world.send(p, 1, 9, &[1u8]);
                let mut req = req;
                loop {
                    match req.test(p) {
                        Ok(msg) => return msg.data[0],
                        Err(back) => {
                            req = back;
                            std::thread::yield_now();
                        }
                    }
                }
            } else {
                let _ = world.recv::<u8>(p, Src::Rank(0), TagSel::Is(9));
                world.send(p, 0, 0, &[77u8]);
                0
            }
        })
        .unwrap();
    assert_eq!(report.results[0], 77);
}

#[test]
fn concurrent_disjoint_splits_are_deterministic() {
    // Two disjoint sub-communicators each split again, concurrently. The
    // derived comm ids (and hence id-keyed noise streams) must not depend
    // on which rank-0 thread wins the race to the registry.
    let run_once = || {
        WorldBuilder::new(8)
            .machine(presets::nehalem_cluster())
            .seed(99)
            .run(|p| {
                let world = p.world();
                let half = world
                    .split(p, Some((p.world_rank() / 4) as i32), 0)
                    .unwrap();
                let quarter = half.split(p, Some((half.rank() / 2) as i32), 0).unwrap();
                // Exercise id-keyed jitter: collectives on the quarters.
                for _ in 0..5 {
                    quarter.barrier(p);
                    p.compute(Work::flops(1e6));
                }
                (quarter.id().0, p.now())
            })
            .unwrap()
            .results
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "derived comm ids and clocks must be reproducible");
    // Distinct quarters got distinct ids.
    let mut ids: Vec<u64> = a.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 4);
}

#[test]
fn recv_from_out_of_range_rank_fails_fast() {
    let result = WorldBuilder::new(2).run(|p| {
        let world = p.world();
        if p.world_rank() == 0 {
            let _ = world.recv::<u8>(p, Src::Rank(9), TagSel::Any);
        }
    });
    match result {
        Err(mpisim::RunError::RankPanicked { message, .. }) => {
            assert!(message.contains("invalid rank 9"), "{message}");
        }
        other => panic!("expected fast failure, got {other:?}"),
    }
}
