//! Match control: the hook a dynamic verifier uses to steer wildcard
//! receives.
//!
//! A wildcard ([`Src::Any`]) receive with several distinct senders queued
//! at match time is the one place this runtime's behavior is a *choice*
//! rather than a consequence of virtual time: real MPI may deliver any of
//! the candidates first. By default the simulator resolves the choice by
//! arrival order (deterministically, under the DES engine). A
//! [`MatchController`] attached via
//! [`WorldBuilder::match_controller`](crate::WorldBuilder::match_controller)
//! is consulted at exactly these points instead, which lets a
//! stateless-model-checking driver (the `mpiverify` crate) record the
//! canonical choice sequence on a first run and replay alternative
//! matchings on later runs.
//!
//! The candidate set handed to the controller is the *earliest queued
//! message per distinct sender*, in arrival order. Per-sender order is
//! pinned by MPI's non-overtaking rule, so these are precisely the
//! matchings a standard-compliant MPI could produce; index 0 is the
//! message the uncontrolled runtime would pick, so a controller that
//! always answers `0` reproduces the default behavior bit for bit.
//!
//! The controller is consulted even when only one sender is queued: a
//! verifier needs those consultations to keep its per-receiver decision
//! slots aligned across runs (and to report single-candidate wildcard
//! sites as trivially race-free).
//!
//! [`Src::Any`]: crate::Src

/// One matchable in-flight message offered to a [`MatchController`]: the
/// earliest queued message of one distinct sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchCandidate {
    /// Sender's world rank.
    pub src_world: usize,
    /// Sender's rank local to the receive's communicator.
    pub src_local: usize,
    /// The message tag.
    pub tag: i32,
    /// The message's global sequence number (sender rank in the high
    /// bits over a per-sender counter — stable across engines and runs).
    pub seq: u64,
}

/// Decides which candidate a wildcard receive consumes.
///
/// Implementations must be cheap and deterministic: the controller runs
/// on the hot receive path, and replay correctness rests on the same
/// inputs producing the same answers. Out-of-range answers are clamped
/// to the last candidate.
pub trait MatchController: Send + Sync {
    /// Pick the index (into `candidates`) of the message `receiver`'s
    /// wildcard receive should consume. `candidates` is never empty and
    /// lists the earliest queued message per distinct sender, in arrival
    /// order; answering `0` reproduces the uncontrolled behavior.
    fn choose(&self, receiver: usize, candidates: &[MatchCandidate]) -> usize;
}
