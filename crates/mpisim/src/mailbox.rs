//! Per-rank mailboxes: the matching queues behind point-to-point messaging.
//!
//! Each world rank owns one mailbox. Senders deposit [`Envelope`]s; the
//! receiving rank blocks on its own mailbox until a matching envelope
//! appears. Matching scans in arrival order, which preserves MPI's
//! non-overtaking rule for a fixed `(source, communicator)` pair because a
//! sender deposits its messages in program order.
//!
//! How a receiver blocks depends on the execution engine: under the
//! threads engine it parks its OS thread on the mailbox condvar; under
//! the DES engine its fiber suspends into the event queue and the
//! depositing sender re-queues it (`crate::des`). A DES world is
//! single-threaded by construction, so its message queues live inside
//! the scheduler (plain `RefCell` storage, no mutex) — the `Mutex` +
//! `Condvar` pair below is only touched by the threads engine. Both
//! paths share the same matching semantics and poison protocol.
//!
//! Mailboxes participate in world poisoning: when any rank fails, waiters
//! are woken and unwind instead of blocking forever.

use crate::control::{MatchCandidate, MatchController};
use crate::error::POISONED_MSG;
use crate::event::CommId;
use crate::message::{Envelope, Src, TagSel};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Remove one matching message from `queue`, if any, honoring an optional
/// [`MatchController`] on wildcard receives.
///
/// This is the single matching-site implementation shared by both engines
/// (the DES scheduler's resident queues and the threads engine's mutexed
/// mailboxes), so a controller observes identical candidate sets and
/// decision points regardless of engine. With `observe`, every queued
/// message matching the selectors is also reported as `(sender world
/// rank, tag)` — the exact candidate set a race analyzer joins on.
///
/// The controller is only consulted for [`Src::Any`] receives (named
/// sources have no choice to make: non-overtaking pins the match), and it
/// chooses among the *earliest queued message per distinct sender* — the
/// set of matchings a standards-compliant MPI could produce. Candidate
/// index 0 is the default (arrival-order) pick.
pub(crate) fn take_from_queue(
    queue: &mut Vec<Envelope>,
    receiver: usize,
    comm: CommId,
    src: Src,
    tag: TagSel,
    observe: bool,
    controller: Option<&dyn MatchController>,
) -> Option<(Envelope, Vec<(usize, i32)>)> {
    let first = queue.iter().position(|e| e.matches(comm, src, tag))?;
    let candidates = if observe {
        queue
            .iter()
            .filter(|e| e.matches(comm, src, tag))
            .map(|e| (e.src_world, e.tag))
            .collect()
    } else {
        Vec::new()
    };
    let pos = match (controller, src) {
        (Some(ctl), Src::Any) => {
            let mut positions: Vec<usize> = Vec::new();
            let mut options: Vec<MatchCandidate> = Vec::new();
            for (i, e) in queue.iter().enumerate() {
                if e.matches(comm, src, tag) && !options.iter().any(|c| c.src_world == e.src_world)
                {
                    positions.push(i);
                    options.push(MatchCandidate {
                        src_world: e.src_world,
                        src_local: e.src_local,
                        tag: e.tag,
                        seq: e.seq,
                    });
                }
            }
            let choice = ctl.choose(receiver, &options).min(options.len() - 1);
            positions[choice]
        }
        _ => first,
    };
    Some((queue.remove(pos), candidates))
}

/// Shared poison flag for a world.
#[derive(Debug, Default)]
pub struct Poison {
    flag: AtomicBool,
}

impl Poison {
    /// Mark the world as failed.
    pub fn set(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has any rank failed?
    #[inline]
    pub fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Unwind the calling thread if the world is poisoned.
    #[inline]
    pub fn check(&self) {
        if self.is_set() {
            panic!("{POISONED_MSG}");
        }
    }
}

/// One rank's incoming-message queue.
pub struct Mailbox {
    queue: Mutex<Vec<Envelope>>,
    arrived: Condvar,
    /// World rank this mailbox belongs to — the rank the DES scheduler
    /// wakes when a message lands here.
    owner: usize,
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox::for_rank(0)
    }
}

impl Mailbox {
    /// The mailbox of world rank `owner`.
    pub fn for_rank(owner: usize) -> Self {
        Mailbox {
            queue: Mutex::new(Vec::new()),
            arrived: Condvar::new(),
            owner,
        }
    }

    /// Deposit a message (called from the sending rank).
    pub fn deposit(&self, envelope: Envelope) {
        #[cfg(target_arch = "x86_64")]
        let envelope = {
            // `with_active` may not run the closure (no scheduler on this
            // thread), so the envelope is passed through an Option to keep
            // ownership when the closure never executes.
            let mut env = Some(envelope);
            let routed = crate::des::with_active(|s| {
                s.deposit(self.owner, env.take().expect("deposit closure runs once"));
                s.wake(self.owner);
            });
            if routed.is_some() {
                return;
            }
            env.take()
                .expect("envelope retained when no scheduler is active")
        };
        self.queue.lock().push(envelope);
        self.arrived.notify_all();
    }

    /// Block until a message matching `(comm, src, tag)` is present and
    /// remove it. Unwinds if the world gets poisoned while waiting.
    pub fn take_matching(&self, comm: CommId, src: Src, tag: TagSel, poison: &Poison) -> Envelope {
        self.take_matching_observed(comm, src, tag, poison, false).0
    }

    /// Like [`Mailbox::take_matching`], but when `observe` is set also
    /// report every queued message that matched the selectors at the
    /// instant of consumption, as `(sender world rank, tag)` pairs — the
    /// candidate set a race analyzer needs, computed under the queue lock
    /// so it is exact.
    pub fn take_matching_observed(
        &self,
        comm: CommId,
        src: Src,
        tag: TagSel,
        poison: &Poison,
        observe: bool,
    ) -> (Envelope, Vec<(usize, i32)>) {
        self.take_matching_controlled(comm, src, tag, poison, observe, None)
    }

    /// Like [`Mailbox::take_matching_observed`], but wildcard matches are
    /// resolved through `controller` when one is given (see
    /// [`crate::control`]). The uncontrolled paths pass `None` and keep
    /// today's arrival-order pick.
    pub(crate) fn take_matching_controlled(
        &self,
        comm: CommId,
        src: Src,
        tag: TagSel,
        poison: &Poison,
        observe: bool,
        controller: Option<&dyn MatchController>,
    ) -> (Envelope, Vec<(usize, i32)>) {
        #[cfg(target_arch = "x86_64")]
        if crate::des::is_active() {
            // Single scheduler thread: match against the scheduler-resident
            // queue without any lock. On a miss the fiber suspends into the
            // event queue; the depositing sender re-queues it. No wakeup can
            // be lost — nothing else runs between the scan and suspension.
            loop {
                poison.check();
                if let Some(hit) = crate::des::with_active(|s| {
                    s.try_take(self.owner, comm, src, tag, observe, controller)
                })
                .flatten()
                {
                    return hit;
                }
                crate::des::with_active(|s| s.block_current());
            }
        }
        let mut queue = self.queue.lock();
        loop {
            poison.check();
            if let Some(hit) =
                take_from_queue(&mut queue, self.owner, comm, src, tag, observe, controller)
            {
                return hit;
            }
            self.arrived.wait(&mut queue);
        }
    }

    /// Non-blocking probe: is a matching message already here?
    pub fn probe(&self, comm: CommId, src: Src, tag: TagSel) -> bool {
        #[cfg(target_arch = "x86_64")]
        if let Some(hit) = crate::des::with_active(|s| s.queue_probe(self.owner, comm, src, tag)) {
            return hit;
        }
        self.queue.lock().iter().any(|e| e.matches(comm, src, tag))
    }

    /// Number of queued messages (diagnostics).
    pub fn len(&self) -> usize {
        #[cfg(target_arch = "x86_64")]
        if let Some(n) = crate::des::with_active(|s| s.queue_len(self.owner)) {
            return n;
        }
        self.queue.lock().len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wake all waiters (used when poisoning the world).
    pub fn wake_all(&self) {
        #[cfg(target_arch = "x86_64")]
        if crate::des::with_active(|s| s.wake(self.owner)).is_some() {
            return;
        }
        // Acquire the lock so a waiter between its poison check and its
        // wait() cannot miss the notification.
        let _guard = self.queue.lock();
        self.arrived.notify_all();
    }
}

/// The full set of mailboxes of a world.
pub struct MailboxSet {
    boxes: Vec<Mailbox>,
    pub poison: Arc<Poison>,
    /// Steers wildcard matches when a verifier drives the world; `None`
    /// (the default) keeps arrival-order matching.
    pub(crate) controller: Option<Arc<dyn MatchController>>,
}

impl MailboxSet {
    /// Create mailboxes for `nranks` ranks.
    pub fn new(nranks: usize, poison: Arc<Poison>) -> Self {
        MailboxSet {
            boxes: (0..nranks).map(Mailbox::for_rank).collect(),
            poison,
            controller: None,
        }
    }

    /// The attached wildcard-match controller, if any.
    #[inline]
    pub(crate) fn controller(&self) -> Option<&dyn MatchController> {
        self.controller.as_deref()
    }

    /// The mailbox of a world rank.
    #[inline]
    pub fn of(&self, world_rank: usize) -> &Mailbox {
        &self.boxes[world_rank]
    }

    /// Poison the world and wake every blocked receiver.
    pub fn poison_all(&self) {
        self.poison.set();
        for b in &self.boxes {
            b.wake_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use machine::VTime;
    use std::thread;
    use std::time::Duration;

    fn envelope(src: usize, tag: i32, seq: u64) -> Envelope {
        Envelope {
            comm: CommId::WORLD,
            src_local: src,
            src_world: src,
            tag,
            send_end: VTime::ZERO,
            seq,
            payload: Payload::real(&[seq as u32]),
        }
    }

    #[test]
    fn deposit_then_take() {
        let mb = Mailbox::default();
        let poison = Poison::default();
        mb.deposit(envelope(1, 5, 0));
        assert!(mb.probe(CommId::WORLD, Src::Rank(1), TagSel::Is(5)));
        let e = mb.take_matching(CommId::WORLD, Src::Rank(1), TagSel::Is(5), &poison);
        assert_eq!(e.src_local, 1);
        assert!(mb.is_empty());
    }

    #[test]
    fn non_overtaking_per_source() {
        let mb = Mailbox::default();
        let poison = Poison::default();
        mb.deposit(envelope(1, 5, 0));
        mb.deposit(envelope(1, 5, 1));
        let a = mb.take_matching(CommId::WORLD, Src::Rank(1), TagSel::Is(5), &poison);
        let b = mb.take_matching(CommId::WORLD, Src::Rank(1), TagSel::Is(5), &poison);
        assert!(a.seq < b.seq);
    }

    #[test]
    fn selective_matching_skips_nonmatching() {
        let mb = Mailbox::default();
        let poison = Poison::default();
        mb.deposit(envelope(1, 5, 0));
        mb.deposit(envelope(2, 7, 1));
        let e = mb.take_matching(CommId::WORLD, Src::Rank(2), TagSel::Any, &poison);
        assert_eq!(e.src_local, 2);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn observed_take_reports_all_candidates() {
        let mb = Mailbox::default();
        let poison = Poison::default();
        mb.deposit(envelope(1, 5, 0));
        mb.deposit(envelope(2, 5, 1));
        mb.deposit(envelope(3, 9, 2)); // non-matching tag
        let (e, candidates) =
            mb.take_matching_observed(CommId::WORLD, Src::Any, TagSel::Is(5), &poison, true);
        assert_eq!(e.seq, 0, "arrival order wins");
        assert_eq!(candidates, vec![(1, 5), (2, 5)]);
        // Without observation the candidate list stays empty.
        let (e, candidates) =
            mb.take_matching_observed(CommId::WORLD, Src::Any, TagSel::Any, &poison, false);
        assert_eq!(e.seq, 1);
        assert!(candidates.is_empty());
    }

    #[test]
    fn blocking_take_wakes_on_deposit() {
        let mb = Arc::new(Mailbox::default());
        let poison = Arc::new(Poison::default());
        let mb2 = mb.clone();
        let poison2 = poison.clone();
        let handle = thread::spawn(move || {
            mb2.take_matching(CommId::WORLD, Src::Rank(0), TagSel::Is(1), &poison2)
                .seq
        });
        thread::sleep(Duration::from_millis(20));
        mb.deposit(envelope(0, 1, 42));
        assert_eq!(handle.join().unwrap(), 42);
    }

    #[test]
    fn poison_unblocks_waiters() {
        let poison = Arc::new(Poison::default());
        let set = Arc::new(MailboxSet::new(2, poison));
        let set2 = set.clone();
        let handle = thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                set2.of(0)
                    .take_matching(CommId::WORLD, Src::Any, TagSel::Any, &set2.poison);
            }));
            result.is_err()
        });
        thread::sleep(Duration::from_millis(20));
        set.poison_all();
        assert!(handle.join().unwrap(), "waiter should unwind on poison");
    }
}
