//! Structured diagnostics: what correctness tools report instead of panics.
//!
//! The runtime's historical error handling mirrors `MPI_ERRORS_ARE_FATAL`:
//! misuse panics a rank and the harness surfaces an opaque
//! [`RunError::RankPanicked`]. Analysis tools (the `mpicheck` crate, the
//! section runtime's verifier) want to say *what* went wrong — which ranks,
//! on which communicator, holding which wait-for cycle — so they build a
//! [`Diagnostic`] and abort the world through [`abort_with`]. The launch
//! harness recovers the diagnostics on the unwinding rank's thread and
//! returns [`RunError::Diagnosed`] instead of a bare panic message.
//!
//! [`RunError::RankPanicked`]: crate::RunError::RankPanicked
//! [`RunError::Diagnosed`]: crate::RunError::Diagnosed

use crate::event::CommId;
use std::cell::RefCell;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational observation; no correctness impact.
    Info,
    /// A hazard: the run completed but its behavior is fragile (e.g. a
    /// wildcard-receive message race).
    Warn,
    /// A definite correctness fault; the run was aborted.
    Error,
}

impl Severity {
    /// Uppercase label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
            Severity::Error => "ERROR",
        }
    }
}

/// One blocked call site inside a deadlock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedSite {
    /// World rank that is blocked.
    pub rank: usize,
    /// The blocked MPI-level call (e.g. `MPI_Recv`, `barrier`).
    pub call: String,
    /// What the call is waiting for, human-readable.
    pub waiting_for: String,
}

impl fmt::Display for BlockedSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} blocked in {} waiting for {}",
            self.rank, self.call, self.waiting_for
        )
    }
}

/// The fault class of a diagnostic, with kind-specific evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiagnosticKind {
    /// A wait-for cycle: no rank in `cycle` can make progress.
    Deadlock {
        /// The blocked call sites, in cycle order: each entry waits on the
        /// next (the last waits on the first).
        cycle: Vec<BlockedSite>,
    },
    /// Ranks of one communicator disagree on the sequence of collectives.
    CollectiveDivergence {
        /// Index of the first divergent collective on this communicator.
        position: usize,
        /// The operation the communicator's agreed sequence expected.
        expected: String,
        /// The operation the offending rank performed instead.
        observed: String,
    },
    /// A wildcard receive had several simultaneously matching in-flight
    /// senders: the match order is nondeterministic on a real MPI.
    MessageRace {
        /// The receiving world rank.
        receiver: usize,
        /// Competing in-flight messages as `(sender world rank, tag)`.
        candidates: Vec<(usize, i32)>,
    },
    /// Section API misuse (imperfect nesting, order violation, exit
    /// without enter).
    SectionMisuse {
        /// The rank's open-section labels at the fault, outermost first.
        label_stack: Vec<String>,
        /// Index of the offending section event on that rank.
        event_index: u64,
    },
}

impl DiagnosticKind {
    /// Short kind name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            DiagnosticKind::Deadlock { .. } => "deadlock",
            DiagnosticKind::CollectiveDivergence { .. } => "collective-divergence",
            DiagnosticKind::MessageRace { .. } => "message-race",
            DiagnosticKind::SectionMisuse { .. } => "section-misuse",
        }
    }
}

/// One structured finding of a correctness tool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Fault class and evidence.
    pub kind: DiagnosticKind,
    /// Severity (only `Error` aborts a run).
    pub severity: Severity,
    /// World ranks involved, sorted ascending.
    pub ranks: Vec<usize>,
    /// Communicator the fault is tied to, when there is one.
    pub comm: Option<CommId>,
    /// One-line human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Render as a JSON object (hand-rolled: the workspace builds without
    /// registry access, so no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_field(&mut out, "kind", &json_str(self.kind.name()));
        push_field(&mut out, "severity", &json_str(self.severity.label()));
        let ranks: Vec<String> = self.ranks.iter().map(ToString::to_string).collect();
        push_field(&mut out, "ranks", &format!("[{}]", ranks.join(",")));
        match self.comm {
            Some(c) => push_field(&mut out, "comm", &c.0.to_string()),
            None => push_field(&mut out, "comm", "null"),
        }
        push_field(&mut out, "message", &json_str(&self.message));
        match &self.kind {
            DiagnosticKind::Deadlock { cycle } => {
                let sites: Vec<String> = cycle
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"rank\":{},\"call\":{},\"waiting_for\":{}}}",
                            s.rank,
                            json_str(&s.call),
                            json_str(&s.waiting_for)
                        )
                    })
                    .collect();
                push_field(&mut out, "cycle", &format!("[{}]", sites.join(",")));
            }
            DiagnosticKind::CollectiveDivergence {
                position,
                expected,
                observed,
            } => {
                push_field(&mut out, "position", &position.to_string());
                push_field(&mut out, "expected", &json_str(expected));
                push_field(&mut out, "observed", &json_str(observed));
            }
            DiagnosticKind::MessageRace {
                receiver,
                candidates,
            } => {
                push_field(&mut out, "receiver", &receiver.to_string());
                let cands: Vec<String> = candidates
                    .iter()
                    .map(|(r, t)| format!("[{r},{t}]"))
                    .collect();
                push_field(&mut out, "candidates", &format!("[{}]", cands.join(",")));
            }
            DiagnosticKind::SectionMisuse {
                label_stack,
                event_index,
            } => {
                let labels: Vec<String> = label_stack.iter().map(|l| json_str(l)).collect();
                push_field(&mut out, "label_stack", &format!("[{}]", labels.join(",")));
                push_field(&mut out, "event_index", &event_index.to_string());
            }
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            self.severity.label(),
            self.kind.name(),
            self.message
        )
    }
}

fn push_field(out: &mut String, key: &str, rendered_value: &str) {
    if !out.ends_with('{') {
        out.push(',');
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(rendered_value);
}

/// Render a string as a JSON string literal (quotes included), escaping
/// quotes, backslashes and control characters. The workspace builds with no
/// registry access (no serde), so every hand-rolled JSON emitter — the
/// diagnostic reports here, the trace/metrics exporters in `mpi-sections` —
/// shares this one escaper instead of growing ad-hoc copies.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Remove exact duplicates, preserving first-occurrence order (several
/// ranks may report the same fault before the world unwinds).
pub fn dedup(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::with_capacity(diags.len());
    for d in diags {
        if !out.contains(&d) {
            out.push(d);
        }
    }
    out
}

/// Human-readable multi-line report over a set of diagnostics.
pub fn report(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "no diagnostics".to_string();
    }
    let mut out = String::new();
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!("{}. {d}\n", i + 1));
        match &d.kind {
            DiagnosticKind::Deadlock { cycle } => {
                for site in cycle {
                    out.push_str(&format!("     {site}\n"));
                }
            }
            DiagnosticKind::CollectiveDivergence {
                position,
                expected,
                observed,
            } => {
                out.push_str(&format!(
                    "     collective #{position}: expected {expected}, observed {observed}\n"
                ));
            }
            DiagnosticKind::MessageRace {
                receiver,
                candidates,
            } => {
                let cands: Vec<String> = candidates
                    .iter()
                    .map(|(r, t)| format!("rank {r} (tag {t})"))
                    .collect();
                out.push_str(&format!(
                    "     receiver rank {receiver}; competing senders: {}\n",
                    cands.join(", ")
                ));
            }
            DiagnosticKind::SectionMisuse {
                label_stack,
                event_index,
            } => {
                out.push_str(&format!(
                    "     open sections: [{}], section event #{event_index}\n",
                    label_stack.join(" > ")
                ));
            }
        }
    }
    out
}

/// JSON array over a set of diagnostics.
pub fn report_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

// ----------------------------------------------------------------------
// The fatal-diagnostic channel
// ----------------------------------------------------------------------

/// Panic message carried by [`abort_with`] unwinds. The launch harness
/// recognizes it and replaces the opaque panic with the stored diagnostics.
pub const DIAGNOSED_MSG: &str = "mpisim: run aborted with diagnostics";

thread_local! {
    /// Diagnostics deposited by [`abort_with`] on the aborting rank's
    /// thread, recovered by the harness after `catch_unwind`.
    static PENDING: RefCell<Vec<Diagnostic>> = const { RefCell::new(Vec::new()) };
}

/// Abort the calling rank with structured diagnostics.
///
/// The diagnostics are stored thread-locally and the thread unwinds with a
/// sentinel panic; [`crate::WorldBuilder::run`] catches it, poisons the
/// world so peers unwind too, and returns
/// [`RunError::Diagnosed`](crate::RunError::Diagnosed). Works from any code
/// running on a rank's thread — a [`crate::Tool`] observing events, or a
/// library layer like the section runtime.
pub fn abort_with(diags: Vec<Diagnostic>) -> ! {
    PENDING.with(|p| p.borrow_mut().extend(diags));
    panic!("{DIAGNOSED_MSG}");
}

/// Drain the calling thread's pending diagnostics (harness side).
pub(crate) fn take_pending() -> Vec<Diagnostic> {
    PENDING.with(|p| std::mem::take(&mut *p.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            kind: DiagnosticKind::Deadlock {
                cycle: vec![
                    BlockedSite {
                        rank: 0,
                        call: "MPI_Recv".into(),
                        waiting_for: "a message from rank 1".into(),
                    },
                    BlockedSite {
                        rank: 1,
                        call: "MPI_Recv".into(),
                        waiting_for: "a message from rank 0".into(),
                    },
                ],
            },
            severity: Severity::Error,
            ranks: vec![0, 1],
            comm: Some(CommId::WORLD),
            message: "recv/recv cross-wait between ranks 0 and 1".into(),
        }
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"kind\":\"deadlock\""), "{j}");
        assert!(j.contains("\"ranks\":[0,1]"), "{j}");
        assert!(j.contains("\"comm\":0"), "{j}");
        assert!(
            j.contains("\"waiting_for\":\"a message from rank 0\""),
            "{j}"
        );
    }

    #[test]
    fn json_escapes_control_and_quotes() {
        let mut d = sample();
        d.message = "a \"quoted\"\nline\u{1}".into();
        let j = d.to_json();
        assert!(j.contains("a \\\"quoted\\\"\\nline\\u0001"), "{j}");
    }

    #[test]
    fn dedup_preserves_order() {
        let a = sample();
        let mut b = sample();
        b.message = "different".into();
        let out = dedup(vec![a.clone(), b.clone(), a.clone()]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], a);
        assert_eq!(out[1], b);
    }

    #[test]
    fn report_lists_cycle_sites() {
        let r = report(&[sample()]);
        assert!(r.contains("deadlock"), "{r}");
        assert!(r.contains("rank 0 blocked in MPI_Recv"), "{r}");
        assert!(r.contains("rank 1 blocked in MPI_Recv"), "{r}");
        assert_eq!(report(&[]), "no diagnostics");
    }

    #[test]
    fn abort_stores_and_take_drains() {
        let result = std::panic::catch_unwind(|| {
            abort_with(vec![sample()]);
        });
        assert!(result.is_err());
        let pending = take_pending();
        assert_eq!(pending.len(), 1);
        assert!(take_pending().is_empty(), "drained");
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
    }
}
