//! The conservative discrete-event scheduler behind `--engine des`.
//!
//! One OS thread drives every rank of a world as a cooperative fiber
//! (see [`crate::fiber`]). Runnable ranks sit in a binary heap keyed by
//! `(virtual clock, world rank)` — the rank id is the deterministic
//! tie-break, so two ranks reaching the same virtual time always run in
//! the same order and a seeded run replays bit-identically. A blocking
//! operation (receive match, collective arrival) suspends its fiber
//! instead of parking an OS thread on a condvar; the peer that satisfies
//! the wait re-queues the sleeper at the clock it blocked with.
//!
//! Conservative ordering: the scheduler never speculates. A rank runs
//! until it *cannot* proceed (no matching message / collective not yet
//! complete), and every virtual timestamp a rank observes is carried on
//! the message or collective record itself, so results are independent of
//! the order in which runnable ranks are interleaved. The heap order only
//! decides *fairness* and determinism, never timing.
//!
//! Non-blocking probes get a third state: a rank that polls and misses is
//! parked as a *poller* and revived when a message lands in its mailbox
//! or when the ready queue drains — so `test`/`probe` spin loops make
//! progress without busy-looping the single scheduler thread, and a probe
//! still observes "not here yet" exactly as it can under real MPI.
//!
//! When the ready queue is empty, no pollers remain, and live ranks are
//! still blocked, the world is provably deadlocked (no message can ever
//! arrive); the scheduler poisons it so every blocked rank unwinds, and
//! the harness reports the deadlock instead of hanging.
#![allow(unsafe_code)]

use crate::event::CommId;
use crate::mailbox::Poison;
use crate::message::{Envelope, Src, TagSel};
use machine::VTime;
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// What a rank's fiber is doing, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankState {
    /// Queued in the ready heap.
    Ready,
    /// Currently executing on the scheduler thread.
    Running,
    /// Suspended until a peer calls [`Scheduler::wake`].
    Blocked,
    /// Suspended after a missed probe; revived by a deposit or when the
    /// ready heap drains.
    Polling,
    /// Entry function returned (or unwound into the rank's catch net).
    Done,
}

struct Slot {
    state: RankState,
    /// The rank's virtual clock when it last entered the scheduler; the
    /// heap key it is re-queued with.
    clock: VTime,
}

/// Scheduler state for one world. Single-threaded by construction: it
/// lives behind an `Rc` installed in a thread-local while the world runs.
pub(crate) struct Scheduler {
    ready: RefCell<BinaryHeap<Reverse<(VTime, usize)>>>,
    slots: RefCell<Vec<Slot>>,
    /// Per-rank incoming-message queues. Under the DES engine the whole
    /// world runs on one OS thread, so p2p matching needs no mutex: the
    /// mailbox layer routes deposits and takes here (plain `RefCell`
    /// borrows) whenever a scheduler is installed.
    queues: RefCell<Vec<Vec<Envelope>>>,
    current: Cell<usize>,
    deadlocked: Cell<bool>,
}

impl Scheduler {
    pub(crate) fn new(nranks: usize) -> Scheduler {
        let mut ready = BinaryHeap::with_capacity(nranks);
        for rank in 0..nranks {
            ready.push(Reverse((VTime::ZERO, rank)));
        }
        Scheduler {
            ready: RefCell::new(ready),
            slots: RefCell::new(
                (0..nranks)
                    .map(|_| Slot {
                        state: RankState::Ready,
                        clock: VTime::ZERO,
                    })
                    .collect(),
            ),
            queues: RefCell::new((0..nranks).map(|_| Vec::new()).collect()),
            current: Cell::new(usize::MAX),
            deadlocked: Cell::new(false),
        }
    }

    /// Deposit a message into `rank`'s queue (lock-free p2p fast path).
    #[inline]
    pub(crate) fn deposit(&self, rank: usize, envelope: Envelope) {
        self.queues.borrow_mut()[rank].push(envelope);
    }

    /// Remove the first message in `rank`'s queue matching the selectors,
    /// if any. With `observe`, also report every matching candidate as
    /// `(sender world rank, tag)` — exact because nothing else can run
    /// between the scan and the removal on the single scheduler thread.
    /// Wildcard matches are resolved through `controller` when one is
    /// given (the verification hook — see [`crate::control`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn try_take(
        &self,
        rank: usize,
        comm: CommId,
        src: Src,
        tag: TagSel,
        observe: bool,
        controller: Option<&dyn crate::control::MatchController>,
    ) -> Option<(Envelope, Vec<(usize, i32)>)> {
        let mut queues = self.queues.borrow_mut();
        let queue = &mut queues[rank];
        crate::mailbox::take_from_queue(queue, rank, comm, src, tag, observe, controller)
    }

    /// The whole blocking-receive operation in one scheduler call: note
    /// `rank`'s clock (the key a waker re-queues it with), then take the
    /// first matching message, suspending the fiber between misses. Doing
    /// it here keeps the hot p2p receive path down to a single
    /// thread-local dispatch.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn recv_match(
        &self,
        rank: usize,
        now: VTime,
        comm: CommId,
        src: Src,
        tag: TagSel,
        observe: bool,
        poison: &Poison,
        controller: Option<&dyn crate::control::MatchController>,
    ) -> (Envelope, Vec<(usize, i32)>) {
        self.slots.borrow_mut()[rank].clock = now;
        loop {
            poison.check();
            if let Some(hit) = self.try_take(rank, comm, src, tag, observe, controller) {
                return hit;
            }
            self.block_current();
        }
    }

    /// Is a matching message already queued for `rank`?
    pub(crate) fn queue_probe(&self, rank: usize, comm: CommId, src: Src, tag: TagSel) -> bool {
        self.queues.borrow()[rank]
            .iter()
            .any(|e| e.matches(comm, src, tag))
    }

    /// Queued-message count for `rank` (diagnostics).
    pub(crate) fn queue_len(&self, rank: usize) -> usize {
        self.queues.borrow()[rank].len()
    }

    /// Did the scheduler poison the world because every live rank was
    /// blocked with no way to make progress?
    pub(crate) fn deadlocked(&self) -> bool {
        self.deadlocked.get()
    }

    /// Record `rank`'s virtual clock ahead of a potentially blocking
    /// operation, so a later [`Scheduler::wake`] re-queues it correctly.
    #[inline]
    pub(crate) fn note_clock(&self, rank: usize, clock: VTime) {
        self.slots.borrow_mut()[rank].clock = clock;
    }

    /// Suspend the current rank until a peer wakes it.
    pub(crate) fn block_current(&self) {
        self.slots.borrow_mut()[self.current.get()].state = RankState::Blocked;
        crate::fiber::suspend_current();
    }

    /// Suspend the current rank after a missed probe; it is revived by
    /// the next deposit into its mailbox or when the ready heap drains.
    pub(crate) fn park_poller(&self) {
        self.slots.borrow_mut()[self.current.get()].state = RankState::Polling;
        crate::fiber::suspend_current();
    }

    /// Make `rank` runnable again (no-op unless it is blocked/polling).
    pub(crate) fn wake(&self, rank: usize) {
        let mut slots = self.slots.borrow_mut();
        let slot = &mut slots[rank];
        if matches!(slot.state, RankState::Blocked | RankState::Polling) {
            slot.state = RankState::Ready;
            self.ready.borrow_mut().push(Reverse((slot.clock, rank)));
        }
    }

    /// Drive every fiber to completion. `poison_world` is invoked once if
    /// a deadlock is detected, before the blocked ranks are revived to
    /// unwind.
    pub(crate) fn drive(&self, fibers: &mut [crate::fiber::Fiber], poison_world: &dyn Fn()) {
        let nranks = fibers.len();
        let mut ndone = 0usize;
        while ndone < nranks {
            let next = self.ready.borrow_mut().pop();
            let Some(Reverse((_, rank))) = next else {
                // Ready heap empty. Revive pollers first: a poller's spin
                // loop owns the decision to keep polling or give up.
                let mut revived = false;
                {
                    let mut slots = self.slots.borrow_mut();
                    let mut ready = self.ready.borrow_mut();
                    for (rank, slot) in slots.iter_mut().enumerate() {
                        if slot.state == RankState::Polling {
                            slot.state = RankState::Ready;
                            ready.push(Reverse((slot.clock, rank)));
                            revived = true;
                        }
                    }
                }
                if revived {
                    continue;
                }
                // No runnable rank, no poller, not everyone done: the
                // remaining ranks wait on messages that can never arrive.
                self.deadlocked.set(true);
                poison_world();
                let blocked: Vec<usize> = {
                    let slots = self.slots.borrow();
                    (0..nranks)
                        .filter(|&r| slots[r].state == RankState::Blocked)
                        .collect()
                };
                for rank in blocked {
                    self.wake(rank);
                }
                continue;
            };
            self.slots.borrow_mut()[rank].state = RankState::Running;
            self.current.set(rank);
            let done = fibers[rank].resume();
            self.current.set(usize::MAX);
            let mut slots = self.slots.borrow_mut();
            if done {
                slots[rank].state = RankState::Done;
                ndone += 1;
            } else if slots[rank].state == RankState::Running {
                // The fiber suspended without declaring why (defensive:
                // no simulator path does this). Treat it as a plain yield.
                slots[rank].state = RankState::Ready;
                self.ready
                    .borrow_mut()
                    .push(Reverse((slots[rank].clock, rank)));
            }
        }
    }
}

thread_local! {
    /// The scheduler of the world currently driven by this OS thread.
    /// A raw pointer kept alive by the `Rc` inside [`InstallGuard`];
    /// cleared (also on unwind) when the guard drops.
    static ACTIVE: Cell<*const Scheduler> = const { Cell::new(std::ptr::null()) };
}

/// RAII installation of a scheduler into this thread's slot.
pub(crate) struct InstallGuard {
    _keep_alive: Rc<Scheduler>,
}

pub(crate) fn install(scheduler: Rc<Scheduler>) -> InstallGuard {
    ACTIVE.with(|active| {
        assert!(
            active.get().is_null(),
            "mpisim: nested DES worlds on one thread are not supported"
        );
        active.set(Rc::as_ptr(&scheduler));
    });
    InstallGuard {
        _keep_alive: scheduler,
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ACTIVE.with(|active| active.set(std::ptr::null()));
    }
}

/// Run `f` against the active scheduler, if this thread is driving one.
/// The cheap null check is the engine dispatch on every hot path: under
/// the threads engine it costs one thread-local load.
#[inline]
pub(crate) fn with_active<R>(f: impl FnOnce(&Scheduler) -> R) -> Option<R> {
    ACTIVE.with(|active| {
        let ptr = active.get();
        if ptr.is_null() {
            None
        } else {
            // SAFETY: non-null only between `install` and the guard's
            // drop, during which the Rc keeps the scheduler alive; all
            // access is from this one thread.
            Some(f(unsafe { &*ptr }))
        }
    })
}

/// Is a DES scheduler driving this thread?
#[inline]
pub(crate) fn is_active() -> bool {
    ACTIVE.with(|active| !active.get().is_null())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same virtual time, different ranks: the heap must always yield
    /// ascending rank ids — the deterministic tie-break the engine's
    /// reproducibility argument rests on.
    #[test]
    fn equal_time_events_pop_in_rank_order() {
        let mut heap: BinaryHeap<Reverse<(VTime, usize)>> = BinaryHeap::new();
        // Insert in scrambled order, all at the same clock.
        for rank in [7usize, 2, 9, 0, 4, 1, 8, 3, 6, 5] {
            heap.push(Reverse((VTime(1000), rank)));
        }
        let order: Vec<usize> =
            std::iter::from_fn(|| heap.pop().map(|Reverse((_, r))| r)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    /// Clock dominates rank: an earlier event runs first even when its
    /// rank id is larger.
    #[test]
    fn earlier_clock_beats_smaller_rank() {
        let mut heap: BinaryHeap<Reverse<(VTime, usize)>> = BinaryHeap::new();
        heap.push(Reverse((VTime(500), 0)));
        heap.push(Reverse((VTime(100), 9)));
        heap.push(Reverse((VTime(500), 1)));
        let order: Vec<(u64, usize)> =
            std::iter::from_fn(|| heap.pop().map(|Reverse((VTime(t), r))| (t, r))).collect();
        assert_eq!(order, vec![(100, 9), (500, 0), (500, 1)]);
    }

    /// Scheduler-level determinism: many same-clock ranks run in rank
    /// order, and a woken rank re-enters at its recorded clock.
    #[test]
    fn drive_runs_equal_clock_ranks_in_rank_order() {
        use std::cell::RefCell as StdRefCell;
        use std::rc::Rc as StdRc;
        let n = 8;
        let sched = Rc::new(Scheduler::new(n));
        let log: StdRc<StdRefCell<Vec<usize>>> = StdRc::new(StdRefCell::new(Vec::new()));
        let guard = install(sched.clone());
        let mut fibers: Vec<crate::fiber::Fiber> = (0..n)
            .map(|rank| {
                let log = log.clone();
                let body = move || {
                    log.borrow_mut().push(rank);
                };
                // SAFETY: every captured value is owned by the closure.
                unsafe { crate::fiber::Fiber::new(32 * 1024, Box::new(body)) }
            })
            .collect();
        sched.drive(&mut fibers, &|| {});
        drop(guard);
        assert_eq!(*log.borrow(), (0..n).collect::<Vec<_>>());
        assert!(!sched.deadlocked());
    }

    /// A blocked rank is revived at the clock it blocked with, after the
    /// waker runs; pure wake/block plumbing without mailboxes.
    #[test]
    fn block_and_wake_round_trip() {
        use std::cell::RefCell as StdRefCell;
        use std::rc::Rc as StdRc;
        let sched = Rc::new(Scheduler::new(2));
        let log: StdRc<StdRefCell<Vec<&'static str>>> = StdRc::new(StdRefCell::new(Vec::new()));
        let guard = install(sched.clone());
        let mut fibers: Vec<crate::fiber::Fiber> = Vec::new();
        {
            let log0 = log.clone();
            let body0 = move || {
                log0.borrow_mut().push("r0 blocks");
                with_active(|s| {
                    s.note_clock(0, VTime(10));
                    s.block_current();
                })
                .unwrap();
                log0.borrow_mut().push("r0 resumed");
            };
            // SAFETY: captured values are owned.
            fibers.push(unsafe { crate::fiber::Fiber::new(32 * 1024, Box::new(body0)) });
            let log1 = log.clone();
            let body1 = move || {
                log1.borrow_mut().push("r1 wakes r0");
                with_active(|s| s.wake(0)).unwrap();
                log1.borrow_mut().push("r1 done");
            };
            // SAFETY: captured values are owned.
            fibers.push(unsafe { crate::fiber::Fiber::new(32 * 1024, Box::new(body1)) });
        }
        sched.drive(&mut fibers, &|| {});
        drop(guard);
        assert_eq!(
            *log.borrow(),
            ["r0 blocks", "r1 wakes r0", "r1 done", "r0 resumed"]
        );
    }

    /// All ranks blocked, nobody to wake them: the scheduler must call
    /// the poison hook and revive them rather than loop forever.
    #[test]
    fn deadlock_is_detected_and_poisoned() {
        let sched = Rc::new(Scheduler::new(2));
        let poisoned = Rc::new(Cell::new(false));
        let guard = install(sched.clone());
        let mut fibers: Vec<crate::fiber::Fiber> = (0..2)
            .map(|rank| {
                let p = poisoned.clone();
                let body = move || {
                    with_active(|s| {
                        s.note_clock(rank, VTime::ZERO);
                        s.block_current();
                    })
                    .unwrap();
                    // Revived by the deadlock path: the world is poisoned.
                    assert!(p.get(), "woken without poison");
                };
                // SAFETY: captured values are owned.
                unsafe { crate::fiber::Fiber::new(32 * 1024, Box::new(body)) }
            })
            .collect();
        let p = poisoned.clone();
        sched.drive(&mut fibers, &move || p.set(true));
        drop(guard);
        assert!(sched.deadlocked());
    }
}
