//! A dependency-free JSON well-formedness checker.
//!
//! The workspace builds with no registry access, so there is no serde to
//! lean on: every exporter in the toolchain hand-rolls its JSON. This
//! module is a small recursive-descent validator that the exporter tests
//! and the `jsoncheck` CLI run over each emitted document, catching the
//! classic hand-rolled-JSON failures (trailing commas, unescaped quotes,
//! unbalanced brackets, bare `NaN`s) without pulling in a parser
//! dependency. It validates grammar only — it does not build a DOM.

/// Validate that `input` is exactly one well-formed JSON value (with
/// optional surrounding whitespace). Returns the byte offset where
/// parsing failed, or `Ok(())`.
pub fn check_json(input: &str) -> Result<(), usize> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Ok(())
    } else {
        Err(pos)
    }
}

/// Assert-style wrapper with a readable failure excerpt; panics with the
/// offending context if `input` is not valid JSON.
pub fn assert_json(input: &str, what: &str) {
    if let Err(pos) = check_json(input) {
        let lo = pos.saturating_sub(40);
        let hi = (pos + 40).min(input.len());
        panic!(
            "{what}: invalid JSON at byte {pos}: ...{}...",
            &input[lo..hi]
        );
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        _ => Err(*pos),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(*pos)
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(*pos);
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(*pos),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(*pos),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(*pos);
    }
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !bytes.get(*pos).is_some_and(|c| c.is_ascii_hexdigit()) {
                                return Err(*pos);
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(*pos),
                }
            }
            0x00..=0x1f => return Err(*pos), // raw control char
            _ => *pos += 1,
        }
    }
    Err(*pos)
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(start);
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(*pos);
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(*pos);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// DOM parsing
// ---------------------------------------------------------------------
//
// The run-store layer (crates/mpistudy) does not just validate documents,
// it *ingests* them: a stored metrics document is parsed back into typed
// rows and re-emitted, and the round trip must be byte-identical. The
// parser below builds on the same grammar as the checker. Numbers keep
// their raw text (`Json::Num`) so integers above 2^53 — nanosecond
// makespans, fingerprints — survive the trip without float rounding;
// accessors convert on demand.

/// A parsed JSON value. Object member order is preserved (hand-rolled
/// emitters in this workspace are order-deterministic, and round-trip
/// tests rely on it).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as u64, if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as usize, if it is a non-negative integer number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as &str, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse exactly one JSON value (with optional surrounding whitespace)
/// into a [`Json`] DOM. Returns the byte offset of the fault on error —
/// the same contract as [`check_json`].
pub fn parse_json(input: &str) -> Result<Json, usize> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let v = value_dom(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Ok(v)
    } else {
        Err(pos)
    }
}

fn value_dom(bytes: &[u8], pos: &mut usize) -> Result<Json, usize> {
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(bytes, pos);
            let mut members = Vec::new();
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = string_dom(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(*pos);
                }
                *pos += 1;
                skip_ws(bytes, pos);
                members.push((key, value_dom(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(*pos),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(bytes, pos);
            let mut items = Vec::new();
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(value_dom(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(*pos),
                }
            }
        }
        Some(b'"') => string_dom(bytes, pos).map(Json::Str),
        Some(b't') => literal(bytes, pos, b"true").map(|()| Json::Bool(true)),
        Some(b'f') => literal(bytes, pos, b"false").map(|()| Json::Bool(false)),
        Some(b'n') => literal(bytes, pos, b"null").map(|()| Json::Null),
        Some(b'-' | b'0'..=b'9') => {
            let start = *pos;
            number(bytes, pos)?;
            // The grammar guarantees the span is ASCII.
            Ok(Json::Num(
                std::str::from_utf8(&bytes[start..*pos])
                    .expect("ascii number")
                    .to_string(),
            ))
        }
        _ => Err(*pos),
    }
}

/// Validate a string with [`string`], then decode its escapes.
fn string_dom(bytes: &[u8], pos: &mut usize) -> Result<String, usize> {
    let start = *pos;
    string(bytes, pos)?;
    // Interior span, without the surrounding quotes; validated UTF-8
    // since the input was a &str and the span boundaries are ASCII.
    let raw = std::str::from_utf8(&bytes[start + 1..*pos - 1]).map_err(|_| start)?;
    if !raw.contains('\\') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{0008}'),
            Some('f') => out.push('\u{000c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).map_err(|_| start)?;
                // Surrogate pairs are not emitted by any exporter here;
                // map lone surrogates to the replacement character.
                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
            }
            _ => return Err(start), // unreachable: checker validated
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#"{"a":[1,2,{"b":"c\n"}],"d":true}"#,
            "  [1, 2]  ",
            r#""é""#,
        ] {
            assert!(check_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1] trailing",
            "\"unterminated",
            "01x",
            "1.",
            "{'single':1}",
            "{\"raw\ncontrol\":1}",
        ] {
            assert!(check_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn error_offset_points_at_the_fault() {
        assert_eq!(check_json("[1,]"), Err(3));
        assert_eq!(check_json("{\"a\":1} x"), Err(8));
    }

    #[test]
    fn dom_parses_typed_values() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}"#;
        let v = parse_json(doc).unwrap();
        let a = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(a[0].as_usize(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn dom_preserves_large_integers_and_raw_number_text() {
        // 2^63 - 25: would round through an f64.
        let v = parse_json("{\"ns\": 9223372036854775783}").unwrap();
        assert_eq!(
            v.get("ns").and_then(Json::as_u64),
            Some(9223372036854775783)
        );
        assert_eq!(v.get("ns"), Some(&Json::Num("9223372036854775783".into())));
    }

    #[test]
    fn dom_rejects_what_the_checker_rejects() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "[1] trailing"] {
            assert_eq!(parse_json(bad).is_err(), check_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn dom_preserves_object_member_order() {
        let v = parse_json(r#"{"z":1,"a":2}"#).unwrap();
        match v {
            Json::Obj(members) => {
                assert_eq!(members[0].0, "z");
                assert_eq!(members[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
