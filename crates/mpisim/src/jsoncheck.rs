//! A dependency-free JSON well-formedness checker.
//!
//! The workspace builds with no registry access, so there is no serde to
//! lean on: every exporter in the toolchain hand-rolls its JSON. This
//! module is a small recursive-descent validator that the exporter tests
//! and the `jsoncheck` CLI run over each emitted document, catching the
//! classic hand-rolled-JSON failures (trailing commas, unescaped quotes,
//! unbalanced brackets, bare `NaN`s) without pulling in a parser
//! dependency. It validates grammar only — it does not build a DOM.

/// Validate that `input` is exactly one well-formed JSON value (with
/// optional surrounding whitespace). Returns the byte offset where
/// parsing failed, or `Ok(())`.
pub fn check_json(input: &str) -> Result<(), usize> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Ok(())
    } else {
        Err(pos)
    }
}

/// Assert-style wrapper with a readable failure excerpt; panics with the
/// offending context if `input` is not valid JSON.
pub fn assert_json(input: &str, what: &str) {
    if let Err(pos) = check_json(input) {
        let lo = pos.saturating_sub(40);
        let hi = (pos + 40).min(input.len());
        panic!(
            "{what}: invalid JSON at byte {pos}: ...{}...",
            &input[lo..hi]
        );
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        _ => Err(*pos),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(*pos)
    }
}

fn object(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(*pos);
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(*pos),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(*pos),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(*pos);
    }
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !bytes.get(*pos).is_some_and(|c| c.is_ascii_hexdigit()) {
                                return Err(*pos);
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(*pos),
                }
            }
            0x00..=0x1f => return Err(*pos), // raw control char
            _ => *pos += 1,
        }
    }
    Err(*pos)
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), usize> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(start);
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(*pos);
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(*pos);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#"{"a":[1,2,{"b":"c\n"}],"d":true}"#,
            "  [1, 2]  ",
            r#""é""#,
        ] {
            assert!(check_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1] trailing",
            "\"unterminated",
            "01x",
            "1.",
            "{'single':1}",
            "{\"raw\ncontrol\":1}",
        ] {
            assert!(check_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn error_offset_points_at_the_fault() {
        assert_eq!(check_json("[1,]"), Err(3));
        assert_eq!(check_json("{\"a\":1} x"), Err(8));
    }
}
