//! Message payloads and envelopes.
//!
//! Payloads carry *logical* size separately from actual data so the same
//! runtime serves two fidelity levels (see DESIGN.md):
//!
//! * **Full** — the payload holds a real `Vec<T>`; timing uses its byte size.
//! * **Timing** — the payload is empty but declares the logical element
//!   count; the network model prices the declared size. This is what lets a
//!   456-rank convolution over a 505 MB image run in megabytes of RAM.

use crate::event::CommId;
use machine::VTime;
use std::any::Any;

/// Message selector for the source rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Match a specific local rank of the communicator.
    Rank(usize),
    /// Match any source (`MPI_ANY_SOURCE`). Matching order among already
    /// arrived messages follows arrival order, which — as in real MPI — is
    /// not deterministic across runs; prefer `Rank` in deterministic tests.
    Any,
}

/// Message selector for the tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match a specific tag.
    Is(i32),
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
}

/// A typed-erased message payload with explicit logical size.
pub struct Payload {
    /// The data, when running at full fidelity. `None` in timing mode.
    data: Option<Box<dyn Any + Send>>,
    /// Logical element count (drives `elems` on the receive side).
    elems: usize,
    /// Logical byte size (drives the network model).
    logical_bytes: u64,
}

impl Payload {
    /// A real payload cloned from a slice.
    pub fn real<T: Clone + Send + 'static>(data: &[T]) -> Payload {
        Payload {
            elems: data.len(),
            logical_bytes: std::mem::size_of_val(data) as u64,
            data: Some(Box::new(data.to_vec())),
        }
    }

    /// A real payload taking ownership of a vector (no copy).
    pub fn from_vec<T: Send + 'static>(data: Vec<T>) -> Payload {
        Payload {
            elems: data.len(),
            logical_bytes: (data.len() * std::mem::size_of::<T>()) as u64,
            data: Some(Box::new(data)),
        }
    }

    /// A virtual payload of `elems` elements of type `T` (timing mode).
    pub fn virtual_elems<T>(elems: usize) -> Payload {
        Payload {
            data: None,
            elems,
            logical_bytes: (elems * std::mem::size_of::<T>()) as u64,
        }
    }

    /// A virtual payload of raw bytes (timing mode).
    pub fn virtual_bytes(bytes: u64) -> Payload {
        Payload {
            data: None,
            elems: bytes as usize,
            logical_bytes: bytes,
        }
    }

    /// Logical byte size.
    #[inline]
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Logical element count.
    #[inline]
    pub fn elems(&self) -> usize {
        self.elems
    }

    /// True when the payload carries no real data.
    #[inline]
    pub fn is_virtual(&self) -> bool {
        self.data.is_none()
    }

    /// Extract the data as `Vec<T>`; empty for virtual payloads. Panics on a
    /// datatype mismatch, mirroring MPI's fatal type errors.
    pub fn into_vec<T: 'static>(self) -> Vec<T> {
        match self.data {
            None => Vec::new(),
            Some(boxed) => match boxed.downcast::<Vec<T>>() {
                Ok(v) => *v,
                Err(_) => panic!(
                    "mpisim: datatype mismatch on receive (expected Vec<{}>)",
                    std::any::type_name::<T>()
                ),
            },
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Payload")
            .field("elems", &self.elems)
            .field("logical_bytes", &self.logical_bytes)
            .field("virtual", &self.is_virtual())
            .finish()
    }
}

/// A message in flight: payload plus matching and timing metadata.
#[derive(Debug)]
pub struct Envelope {
    /// Communicator the message travels on.
    pub comm: CommId,
    /// Sender's rank, local to that communicator.
    pub src_local: usize,
    /// Sender's world rank (for node-placement pricing).
    pub src_world: usize,
    /// Message tag.
    pub tag: i32,
    /// Virtual time at which the sender finished injecting the message.
    pub send_end: VTime,
    /// Monotone per-world sequence number (preserves per-sender ordering).
    pub seq: u64,
    /// The payload.
    pub payload: Payload,
}

impl Envelope {
    /// Does this envelope match the given receive selectors?
    #[inline]
    pub fn matches(&self, comm: CommId, src: Src, tag: TagSel) -> bool {
        if self.comm != comm {
            return false;
        }
        let src_ok = match src {
            Src::Any => true,
            Src::Rank(r) => self.src_local == r,
        };
        let tag_ok = match tag {
            TagSel::Any => true,
            TagSel::Is(t) => self.tag == t,
        };
        src_ok && tag_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(src: usize, tag: i32) -> Envelope {
        Envelope {
            comm: CommId::WORLD,
            src_local: src,
            src_world: src,
            tag,
            send_end: VTime::ZERO,
            seq: 0,
            payload: Payload::real(&[1u32, 2, 3]),
        }
    }

    #[test]
    fn real_payload_roundtrip() {
        let p = Payload::real(&[1.0f64, 2.0, 3.0]);
        assert_eq!(p.elems(), 3);
        assert_eq!(p.logical_bytes(), 24);
        assert!(!p.is_virtual());
        assert_eq!(p.into_vec::<f64>(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_no_copy() {
        let p = Payload::from_vec(vec![7u8; 10]);
        assert_eq!(p.logical_bytes(), 10);
        assert_eq!(p.into_vec::<u8>(), vec![7u8; 10]);
    }

    #[test]
    fn virtual_payload() {
        let p = Payload::virtual_elems::<f64>(1000);
        assert!(p.is_virtual());
        assert_eq!(p.elems(), 1000);
        assert_eq!(p.logical_bytes(), 8000);
        assert!(p.into_vec::<f64>().is_empty());
        let p = Payload::virtual_bytes(4096);
        assert_eq!(p.logical_bytes(), 4096);
    }

    #[test]
    #[should_panic(expected = "datatype mismatch")]
    fn type_mismatch_panics() {
        let p = Payload::real(&[1u32]);
        let _ = p.into_vec::<f64>();
    }

    #[test]
    fn matching() {
        let e = envelope(2, 9);
        assert!(e.matches(CommId::WORLD, Src::Rank(2), TagSel::Is(9)));
        assert!(e.matches(CommId::WORLD, Src::Any, TagSel::Is(9)));
        assert!(e.matches(CommId::WORLD, Src::Rank(2), TagSel::Any));
        assert!(!e.matches(CommId::WORLD, Src::Rank(1), TagSel::Is(9)));
        assert!(!e.matches(CommId::WORLD, Src::Rank(2), TagSel::Is(8)));
        assert!(!e.matches(CommId(5), Src::Any, TagSel::Any));
    }
}
