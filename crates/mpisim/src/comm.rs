//! Communicators and communication operations.
//!
//! [`Comm`] is a per-rank handle onto a shared communicator object. The
//! world communicator exists from launch; applications derive others with
//! [`Comm::dup`] and [`Comm::split`], exactly as in MPI.
//!
//! Timing semantics:
//!
//! * **Point-to-point** is eager/buffered: a send deposits the message with
//!   the sender's departure timestamp and returns after charging the CPU
//!   overhead `o`. The receiver's completion time is
//!   `max(now, send_end + latency + bytes/bandwidth + jitter) + o` — the
//!   timestamp piggyback scheme of DESIGN.md (D1). Waiting, imbalance and
//!   jitter therefore propagate causally from rank to rank.
//! * **Collectives** synchronize: every participant leaves at
//!   `max(entry times) + model cost (+ jitter)`, computed once per
//!   operation by the rendezvous machinery.

use crate::collective::{Done, Rendezvous, Slot};
use crate::event::{CommId, EventKind, MpiCall, MpiEvent};
use crate::message::{Envelope, Payload, Src, TagSel};
use crate::proc::Proc;
use machine::{DetRng, Topology, VTime};
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared (cross-rank) state of one communicator.
pub struct CommShared {
    pub(crate) id: CommId,
    /// Mapping local rank -> world rank.
    pub(crate) world_ranks: Arc<Vec<usize>>,
    pub(crate) rendezvous: Rendezvous,
    pub(crate) spans_nodes: bool,
}

/// Allocates communicator ids and tracks all live communicators (so world
/// poisoning can wake rendezvous waiters).
pub(crate) struct Registry {
    next_id: AtomicU64,
    all: Mutex<Vec<Arc<CommShared>>>,
    topology: Topology,
}

impl Registry {
    pub(crate) fn new(topology: Topology) -> Self {
        Registry {
            next_id: AtomicU64::new(0),
            all: Mutex::new(Vec::new()),
            topology,
        }
    }

    /// Create a communicator over the given world ranks (local rank i maps
    /// to `world_ranks[i]`). The first registration gets [`CommId::WORLD`].
    ///
    /// Only used for the world communicator today; derived communicators
    /// get deterministic ids through [`Registry::register_with_id`] —
    /// a global counter would make ids depend on the real-time order in
    /// which *disjoint* communicators happen to split, breaking
    /// run-to-run determinism of id-keyed noise streams.
    pub(crate) fn register(&self, world_ranks: Vec<usize>) -> Arc<CommShared> {
        let id = CommId(self.next_id.fetch_add(1, Ordering::SeqCst));
        self.register_with_id(id, world_ranks)
    }

    /// Create a communicator with a caller-derived (deterministic) id.
    pub(crate) fn register_with_id(&self, id: CommId, world_ranks: Vec<usize>) -> Arc<CommShared> {
        let spans_nodes = self.topology.spans_nodes(&world_ranks);
        let world_ranks = Arc::new(world_ranks);
        let shared = Arc::new(CommShared {
            id,
            rendezvous: Rendezvous::with_members(world_ranks.len(), Some(world_ranks.clone())),
            world_ranks,
            spans_nodes,
        });
        self.all.lock().push(shared.clone());
        shared
    }

    /// Wake every rendezvous (poisoning path).
    pub(crate) fn wake_all(&self) {
        for comm in self.all.lock().iter() {
            comm.rendezvous.wake_all();
        }
    }
}

/// A received message.
#[derive(Debug)]
pub struct Recvd<T> {
    /// The data (empty when the message was virtual — timing mode).
    pub data: Vec<T>,
    /// Logical element count, valid in both fidelity modes.
    pub elems: usize,
    /// Logical byte size.
    pub logical_bytes: u64,
    /// Sender's local rank in the communicator.
    pub src: usize,
    /// Message tag.
    pub tag: i32,
}

/// Handle for a posted non-blocking send.
#[derive(Debug)]
#[must_use = "a request must be waited on"]
pub struct SendReq {
    bytes: u64,
    comm: CommId,
}

impl SendReq {
    /// Complete the send. Buffered sends complete immediately; this only
    /// raises the `MPI_Wait` tool events.
    pub fn wait(self, p: &mut Proc) {
        p.tool_call_enter(MpiCall::Wait, self.comm);
        p.tool_call_exit(MpiCall::Wait, self.comm, self.bytes);
    }
}

/// Handle for a posted non-blocking receive.
///
/// Matching and timing happen at [`RecvReq::wait`]; posting early costs
/// nothing and gains nothing (the eager model delivers the message at the
/// same virtual time either way). This mirrors an eager-protocol MPI where
/// the payload lands in a bounce buffer regardless of the posted receive.
#[derive(Debug)]
#[must_use = "a request must be waited on"]
pub struct RecvReq<T> {
    comm: Comm,
    src: Src,
    tag: TagSel,
    _marker: PhantomData<fn() -> T>,
}

impl<T: 'static> RecvReq<T> {
    /// Block until the matching message is consumed; returns it.
    pub fn wait(self, p: &mut Proc) -> Recvd<T> {
        p.tool_call_enter(MpiCall::Wait, self.comm.id());
        let out = self.comm.recv_raw::<T>(p, self.src, self.tag);
        p.tool_call_exit(MpiCall::Wait, self.comm.id(), out.logical_bytes);
        out
    }

    /// `MPI_Test`: complete the receive if the message already arrived,
    /// else hand the request back untouched. Costs no virtual time when
    /// nothing matched.
    pub fn test(self, p: &mut Proc) -> Result<Recvd<T>, RecvReq<T>> {
        if self.comm.probe(p, self.src, self.tag) {
            Ok(self.wait(p))
        } else {
            Err(self)
        }
    }
}

/// Complete a batch of receive requests (`MPI_Waitall`), returning the
/// messages in request order. The rank's clock ends at the completion of
/// the last-arriving message, as with a real waitall.
pub fn waitall<T: 'static>(p: &mut Proc, reqs: Vec<RecvReq<T>>) -> Vec<Recvd<T>> {
    reqs.into_iter().map(|r| r.wait(p)).collect()
}

/// Per-rank communicator handle.
#[derive(Clone)]
pub struct Comm {
    shared: Arc<CommShared>,
    local_rank: usize,
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("id", &self.shared.id)
            .field("size", &self.size())
            .field("local_rank", &self.local_rank)
            .finish()
    }
}

impl Comm {
    pub(crate) fn from_shared(shared: Arc<CommShared>, world_rank: usize) -> Comm {
        let local_rank = shared
            .world_ranks
            .iter()
            .position(|&w| w == world_rank)
            .expect("mpisim: rank is not a member of this communicator");
        Comm { shared, local_rank }
    }

    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.local_rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.shared.world_ranks.len()
    }

    /// The communicator's id (stable for the lifetime of the world).
    #[inline]
    pub fn id(&self) -> CommId {
        self.shared.id
    }

    /// World rank of a local rank.
    #[inline]
    pub fn world_rank_of(&self, local: usize) -> usize {
        self.shared.world_ranks[local]
    }

    /// Whether this communicator's ranks span more than one node.
    #[inline]
    pub fn spans_nodes(&self) -> bool {
        self.shared.spans_nodes
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    fn send_raw(&self, p: &mut Proc, dest: usize, tag: i32, payload: Payload) -> u64 {
        assert!(
            dest < self.size(),
            "mpisim: send to invalid rank {dest} (comm size {})",
            self.size()
        );
        let dest_world = self.world_rank_of(dest);
        let topo = p.machine.topology;
        let link = *p
            .machine
            .network
            .link(topo.node_of(p.world_rank), topo.node_of(dest_world));
        p.now += VTime::from_secs_f64(link.overhead);
        let bytes = payload.logical_bytes();
        let envelope = Envelope {
            comm: self.id(),
            src_local: self.local_rank,
            src_world: p.world_rank,
            tag,
            send_end: p.now,
            seq: p.next_seq(),
            payload,
        };
        // Raised before the deposit becomes visible: an analyzer's
        // in-flight set then always covers what receivers can match.
        if p.wants(EventKind::SendEnqueued) {
            p.raise(MpiEvent::SendEnqueued {
                comm: self.id(),
                dst_local: dest,
                dst_world: dest_world,
                tag,
                seq: envelope.seq,
                bytes,
                time: p.now,
            });
        }
        p.mailboxes.of(dest_world).deposit(envelope);
        bytes
    }

    fn recv_raw<T: 'static>(&self, p: &mut Proc, src: Src, tag: TagSel) -> Recvd<T> {
        if let Src::Rank(r) = src {
            assert!(
                r < self.size(),
                "mpisim: receive from invalid rank {r} (comm size {})",
                self.size()
            );
        }
        if p.wants(EventKind::RecvBlocked) {
            p.raise(MpiEvent::RecvBlocked {
                comm: self.id(),
                src,
                tag,
                members: self.shared.world_ranks.clone(),
                time: p.now,
            });
        }
        // Candidate observation is only paid for when a tool subscribed
        // to RecvMatched (it is what a race analyzer joins on).
        let observing = p.wants(EventKind::RecvMatched);
        let controller = p.mailboxes.controller();
        #[cfg(target_arch = "x86_64")]
        let des_hit = crate::des::with_active(|s| {
            s.recv_match(
                p.world_rank,
                p.now,
                self.id(),
                src,
                tag,
                observing,
                &p.mailboxes.poison,
                controller,
            )
        });
        #[cfg(not(target_arch = "x86_64"))]
        let des_hit: Option<(Envelope, Vec<(usize, i32)>)> = None;
        let (envelope, candidates) = match des_hit {
            Some(hit) => hit,
            None => p.mailboxes.of(p.world_rank).take_matching_controlled(
                self.id(),
                src,
                tag,
                &p.mailboxes.poison,
                observing,
                controller,
            ),
        };
        if observing {
            p.raise(MpiEvent::RecvMatched {
                comm: self.id(),
                src_local: envelope.src_local,
                src_world: envelope.src_world,
                tag: envelope.tag,
                seq: envelope.seq,
                bytes: envelope.payload.logical_bytes(),
                candidates,
                time: p.now,
            });
        }
        let topo = p.machine.topology;
        let link = p
            .machine
            .network
            .link(topo.node_of(envelope.src_world), topo.node_of(p.world_rank));
        let jitter = p.machine.noise.latency_jitter(&mut p.net_rng);
        let transfer = link.transfer_secs(envelope.payload.logical_bytes() as usize) + jitter;
        let arrival = envelope.send_end + VTime::from_secs_f64(transfer);
        p.now = p.now.max(arrival) + VTime::from_secs_f64(link.overhead);
        let elems = envelope.payload.elems();
        let logical_bytes = envelope.payload.logical_bytes();
        Recvd {
            data: envelope.payload.into_vec::<T>(),
            elems,
            logical_bytes,
            src: envelope.src_local,
            tag: envelope.tag,
        }
    }

    /// Blocking standard-mode send of a slice (cloned into the message).
    pub fn send<T: Clone + Send + 'static>(&self, p: &mut Proc, dest: usize, tag: i32, data: &[T]) {
        p.tool_call_enter(MpiCall::Send, self.id());
        let bytes = self.send_raw(p, dest, tag, Payload::real(data));
        p.tool_call_exit(MpiCall::Send, self.id(), bytes);
    }

    /// Blocking send taking ownership of the buffer (no copy).
    pub fn send_vec<T: Send + 'static>(&self, p: &mut Proc, dest: usize, tag: i32, data: Vec<T>) {
        p.tool_call_enter(MpiCall::Send, self.id());
        let bytes = self.send_raw(p, dest, tag, Payload::from_vec(data));
        p.tool_call_exit(MpiCall::Send, self.id(), bytes);
    }

    /// Timing-mode send: prices `elems` elements of `T` without moving data.
    pub fn send_virtual<T>(&self, p: &mut Proc, dest: usize, tag: i32, elems: usize) {
        p.tool_call_enter(MpiCall::Send, self.id());
        let bytes = self.send_raw(p, dest, tag, Payload::virtual_elems::<T>(elems));
        p.tool_call_exit(MpiCall::Send, self.id(), bytes);
    }

    /// Blocking receive.
    pub fn recv<T: 'static>(&self, p: &mut Proc, src: Src, tag: TagSel) -> Recvd<T> {
        p.tool_call_enter(MpiCall::Recv, self.id());
        let out = self.recv_raw::<T>(p, src, tag);
        p.tool_call_exit(MpiCall::Recv, self.id(), out.logical_bytes);
        out
    }

    /// Combined send+receive (deadlock-free under the eager model).
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv<T: Clone + Send + 'static>(
        &self,
        p: &mut Proc,
        dest: usize,
        send_tag: i32,
        data: &[T],
        src: Src,
        recv_tag: TagSel,
    ) -> Recvd<T> {
        p.tool_call_enter(MpiCall::Sendrecv, self.id());
        let sent = self.send_raw(p, dest, send_tag, Payload::real(data));
        let out = self.recv_raw::<T>(p, src, recv_tag);
        p.tool_call_exit(MpiCall::Sendrecv, self.id(), sent + out.logical_bytes);
        out
    }

    /// Timing-mode sendrecv.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv_virtual<T: 'static>(
        &self,
        p: &mut Proc,
        dest: usize,
        send_tag: i32,
        elems: usize,
        src: Src,
        recv_tag: TagSel,
    ) -> Recvd<T> {
        p.tool_call_enter(MpiCall::Sendrecv, self.id());
        let sent = self.send_raw(p, dest, send_tag, Payload::virtual_elems::<T>(elems));
        let out = self.recv_raw::<T>(p, src, recv_tag);
        p.tool_call_exit(MpiCall::Sendrecv, self.id(), sent + out.logical_bytes);
        out
    }

    /// Non-blocking (buffered) send.
    pub fn isend<T: Clone + Send + 'static>(
        &self,
        p: &mut Proc,
        dest: usize,
        tag: i32,
        data: &[T],
    ) -> SendReq {
        p.tool_call_enter(MpiCall::Isend, self.id());
        let bytes = self.send_raw(p, dest, tag, Payload::real(data));
        p.tool_call_exit(MpiCall::Isend, self.id(), bytes);
        SendReq {
            bytes,
            comm: self.id(),
        }
    }

    /// Non-blocking receive; matching happens at [`RecvReq::wait`].
    pub fn irecv<T: 'static>(&self, p: &mut Proc, src: Src, tag: TagSel) -> RecvReq<T> {
        p.tool_call_enter(MpiCall::Irecv, self.id());
        p.tool_call_exit(MpiCall::Irecv, self.id(), 0);
        RecvReq {
            comm: self.clone(),
            src,
            tag,
            _marker: PhantomData,
        }
    }

    /// Non-blocking probe: is a matching message already queued?
    ///
    /// Under the threads engine this answers from *real-time* mailbox
    /// state: a `false` may become `true` the moment the sender's OS
    /// thread gets scheduled, independent of virtual time — a single
    /// probe's outcome is not reproducible across runs. Under the DES
    /// engine a miss parks the caller as a *poller* (revived by the next
    /// deposit into its mailbox or when every other rank is blocked or
    /// done) before reporting `false`, so poll loops make progress and
    /// probe outcomes are deterministic. Deterministic protocols should
    /// poll in a loop (as `RecvReq::test` users do) or use blocking
    /// receives.
    pub fn probe(&self, p: &Proc, src: Src, tag: TagSel) -> bool {
        let mailbox = p.mailboxes.of(p.world_rank);
        let hit = mailbox.probe(self.id(), src, tag);
        #[cfg(target_arch = "x86_64")]
        if !hit {
            crate::des::with_active(|s| {
                // Yield so peers can run; report the miss afterwards (the
                // caller decides whether to keep polling). The poison
                // check makes a spin loop unwind with its peers.
                s.note_clock(p.world_rank, p.now);
                s.park_poller();
                p.mailboxes.poison.check();
            });
        }
        hit
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// Synchronize at the rendezvous; returns the generation record with
    /// the rank's clock already advanced to the common exit time. `root` is
    /// the root's local rank for rooted collectives (tool-visible only —
    /// timing does not depend on it).
    fn sync<F>(
        &self,
        p: &mut Proc,
        op: &'static str,
        root: Option<usize>,
        my_bytes: u64,
        slot: Slot,
        cost: F,
    ) -> (u64, Arc<Done>)
    where
        F: FnOnce(&machine::CollectiveCost<'_>, u64) -> f64,
    {
        let machine = p.machine.clone();
        let spans = self.shared.spans_nodes;
        let seed = p.seed;
        let cid = self.shared.id;
        let psize = self.size();
        // Raised before `arrive`: an analyzer sees the rank as (possibly)
        // blocked in the collective before the rendezvous can park it.
        if p.wants(EventKind::CollectiveEnter) {
            p.raise(MpiEvent::CollectiveEnter {
                op,
                comm: cid,
                members: self.shared.world_ranks.clone(),
                root,
                time: p.now,
            });
        }
        #[cfg(target_arch = "x86_64")]
        crate::des::with_active(|s| s.note_clock(p.world_rank, p.now));
        let (gen, done) = self.shared.rendezvous.arrive(
            self.local_rank,
            op,
            p.now,
            my_bytes,
            slot,
            |view| {
                let cc = machine.collective(psize, spans);
                let base = cost(&cc, view.total_bytes);
                // Namespaced so collective streams never collide with the
                // per-rank (seed, rank, {0,1,2}) streams — comm id 0 and
                // world rank 0 would otherwise share seeds.
                let mut rng = DetRng::for_stream(seed ^ 0x636f_6c6c_6563_7469, cid.0, view.gen);
                let jitter = machine.noise.latency_jitter(&mut rng);
                view.max_entry() + VTime::from_secs_f64(base + jitter)
            },
            &p.mailboxes.poison,
        );
        p.now = done.exit;
        if p.wants(EventKind::CollectiveExit) {
            p.raise(MpiEvent::CollectiveExit {
                op,
                comm: cid,
                bytes: done.total_bytes,
                time: p.now,
            });
        }
        (gen, done)
    }

    fn finish(&self, gen: u64, done: &Arc<Done>) {
        self.shared.rendezvous.finish_read(gen, done);
    }

    /// Barrier over the communicator.
    pub fn barrier(&self, p: &mut Proc) {
        p.tool_call_enter(MpiCall::Barrier, self.id());
        let (gen, done) = self.sync(p, "barrier", None, 0, None, |cc, _| cc.barrier());
        self.finish(gen, &done);
        p.tool_call_exit(MpiCall::Barrier, self.id(), 0);
    }

    /// Broadcast from `root`. The root passes `Some(data)`, everyone else
    /// `None`; all ranks (including the root) receive the broadcast vector.
    pub fn bcast<T: Clone + Send + 'static>(
        &self,
        p: &mut Proc,
        root: usize,
        data: Option<Vec<T>>,
    ) -> Vec<T> {
        assert!(root < self.size(), "mpisim: bcast root out of range");
        let is_root = self.local_rank == root;
        assert_eq!(
            is_root,
            data.is_some(),
            "mpisim: bcast data must be Some exactly on the root"
        );
        p.tool_call_enter(MpiCall::Bcast, self.id());
        let (my_bytes, slot): (u64, Slot) = match data {
            Some(v) => (
                (v.len() * std::mem::size_of::<T>()) as u64,
                Some(Box::new(v)),
            ),
            None => (0, None),
        };
        let (gen, done) = self.sync(p, "bcast", Some(root), my_bytes, slot, |cc, total| {
            cc.bcast(total as usize)
        });
        let out = {
            let slots = done.slots.lock();
            let any = slots[root]
                .as_ref()
                .expect("mpisim: bcast root slot missing");
            any.downcast_ref::<Vec<T>>()
                .expect("mpisim: bcast datatype mismatch")
                .clone()
        };
        self.finish(gen, &done);
        // Root accounts its send; non-roots their receive (counting both
        // on the root would double the payload in tool statistics).
        let recv_bytes = (out.len() * std::mem::size_of::<T>()) as u64;
        let bytes = if is_root { my_bytes } else { recv_bytes };
        p.tool_call_exit(MpiCall::Bcast, self.id(), bytes);
        out
    }

    /// Timing-mode broadcast: the root declares `Some(elems)`; every rank
    /// returns the element count (data is never moved).
    pub fn bcast_virtual<T>(&self, p: &mut Proc, root: usize, elems: Option<usize>) -> usize {
        assert!(root < self.size(), "mpisim: bcast root out of range");
        let is_root = self.local_rank == root;
        assert_eq!(is_root, elems.is_some());
        p.tool_call_enter(MpiCall::Bcast, self.id());
        let (my_bytes, slot): (u64, Slot) = match elems {
            Some(n) => (
                (n * std::mem::size_of::<T>()) as u64,
                Some(Box::new(n as u64)),
            ),
            None => (0, None),
        };
        let (gen, done) = self.sync(p, "bcast", Some(root), my_bytes, slot, |cc, total| {
            cc.bcast(total as usize)
        });
        let n = {
            let slots = done.slots.lock();
            *slots[root]
                .as_ref()
                .expect("mpisim: bcast root slot missing")
                .downcast_ref::<u64>()
                .expect("mpisim: bcast count mismatch") as usize
        };
        self.finish(gen, &done);
        // Same accounting as the full-fidelity variant: the root reports
        // its send, everyone else the logical payload received.
        let bytes = if is_root {
            my_bytes
        } else {
            (n * std::mem::size_of::<T>()) as u64
        };
        p.tool_call_exit(MpiCall::Bcast, self.id(), bytes);
        n
    }

    /// Variable scatter: the root passes one chunk per rank; every rank
    /// receives its chunk (moved, not cloned).
    pub fn scatterv<T: Send + 'static>(
        &self,
        p: &mut Proc,
        root: usize,
        chunks: Option<Vec<Vec<T>>>,
    ) -> Vec<T> {
        assert!(root < self.size(), "mpisim: scatterv root out of range");
        let is_root = self.local_rank == root;
        assert_eq!(
            is_root,
            chunks.is_some(),
            "mpisim: scatterv chunks must be Some exactly on the root"
        );
        p.tool_call_enter(MpiCall::Scatterv, self.id());
        let (my_bytes, slot): (u64, Slot) = match chunks {
            Some(cs) => {
                assert_eq!(
                    cs.len(),
                    self.size(),
                    "mpisim: scatterv needs one chunk per rank"
                );
                let total: usize = cs.iter().map(|c| c.len()).sum();
                let boxed: Vec<Option<Vec<T>>> = cs.into_iter().map(Some).collect();
                (
                    (total * std::mem::size_of::<T>()) as u64,
                    Some(Box::new(boxed)),
                )
            }
            None => (0, None),
        };
        let (gen, done) = self.sync(p, "scatterv", Some(root), my_bytes, slot, |cc, total| {
            cc.scatter(total as usize)
        });
        let mine = {
            let mut slots = done.slots.lock();
            let any = slots[root]
                .as_mut()
                .expect("mpisim: scatterv root slot missing");
            let chunks = any
                .downcast_mut::<Vec<Option<Vec<T>>>>()
                .expect("mpisim: scatterv datatype mismatch");
            chunks[self.local_rank]
                .take()
                .expect("mpisim: scatterv chunk already taken")
        };
        self.finish(gen, &done);
        let recv_bytes = (mine.len() * std::mem::size_of::<T>()) as u64;
        p.tool_call_exit(MpiCall::Scatterv, self.id(), my_bytes + recv_bytes);
        mine
    }

    /// Equal-chunk scatter: the root's buffer length must be divisible by
    /// the communicator size.
    pub fn scatter<T: Send + 'static>(
        &self,
        p: &mut Proc,
        root: usize,
        data: Option<Vec<T>>,
    ) -> Vec<T> {
        let chunks = data.map(|v| {
            let p_count = self.size();
            assert!(
                v.len() % p_count == 0,
                "mpisim: scatter length {} not divisible by {p_count}",
                v.len()
            );
            let chunk = v.len() / p_count;
            let mut v = v;
            let mut out = Vec::with_capacity(p_count);
            for _ in 0..p_count {
                let rest = v.split_off(chunk);
                out.push(v);
                v = rest;
            }
            out
        });
        self.scatterv(p, root, chunks)
    }

    /// Timing-mode variable scatter: the root declares per-rank element
    /// counts; every rank returns its own count.
    pub fn scatterv_virtual<T>(
        &self,
        p: &mut Proc,
        root: usize,
        counts: Option<Vec<usize>>,
    ) -> usize {
        assert!(root < self.size(), "mpisim: scatterv root out of range");
        let is_root = self.local_rank == root;
        assert_eq!(is_root, counts.is_some());
        p.tool_call_enter(MpiCall::Scatterv, self.id());
        let (my_bytes, slot): (u64, Slot) = match counts {
            Some(cs) => {
                assert_eq!(cs.len(), self.size());
                let total: usize = cs.iter().sum();
                (
                    (total * std::mem::size_of::<T>()) as u64,
                    Some(Box::new(cs)),
                )
            }
            None => (0, None),
        };
        let (gen, done) = self.sync(p, "scatterv", Some(root), my_bytes, slot, |cc, total| {
            cc.scatter(total as usize)
        });
        let mine = {
            let slots = done.slots.lock();
            slots[root]
                .as_ref()
                .expect("mpisim: scatterv root slot missing")
                .downcast_ref::<Vec<usize>>()
                .expect("mpisim: scatterv counts mismatch")[self.local_rank]
        };
        self.finish(gen, &done);
        // Match the full-fidelity accounting: contribution plus the
        // logical chunk received.
        let recv_bytes = (mine * std::mem::size_of::<T>()) as u64;
        p.tool_call_exit(MpiCall::Scatterv, self.id(), my_bytes + recv_bytes);
        mine
    }

    /// Variable gather: every rank contributes a vector; the root receives
    /// all of them indexed by local rank (others receive an empty vec).
    pub fn gatherv<T: Send + 'static>(
        &self,
        p: &mut Proc,
        root: usize,
        data: Vec<T>,
    ) -> Vec<Vec<T>> {
        assert!(root < self.size(), "mpisim: gatherv root out of range");
        p.tool_call_enter(MpiCall::Gatherv, self.id());
        let my_bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let slot: Slot = Some(Box::new(data));
        let (gen, done) = self.sync(p, "gatherv", Some(root), my_bytes, slot, |cc, total| {
            cc.gather(total as usize)
        });
        let out = if self.local_rank == root {
            let mut slots = done.slots.lock();
            let mut all = Vec::with_capacity(self.size());
            for slot in slots.iter_mut() {
                let boxed = slot.take().expect("mpisim: gatherv slot missing");
                all.push(
                    *boxed
                        .downcast::<Vec<T>>()
                        .unwrap_or_else(|_| panic!("mpisim: gatherv datatype mismatch")),
                );
            }
            all
        } else {
            Vec::new()
        };
        self.finish(gen, &done);
        let recv_bytes: u64 = out
            .iter()
            .map(|v| (v.len() * std::mem::size_of::<T>()) as u64)
            .sum();
        p.tool_call_exit(MpiCall::Gatherv, self.id(), my_bytes + recv_bytes);
        out
    }

    /// Gather with flattening: the root receives all contributions
    /// concatenated in rank order.
    pub fn gather<T: Send + 'static>(&self, p: &mut Proc, root: usize, data: Vec<T>) -> Vec<T> {
        self.gatherv(p, root, data).into_iter().flatten().collect()
    }

    /// Timing-mode gather: ranks declare element counts; the root returns
    /// all counts (others an empty vec).
    pub fn gatherv_virtual<T>(&self, p: &mut Proc, root: usize, elems: usize) -> Vec<usize> {
        assert!(root < self.size(), "mpisim: gatherv root out of range");
        p.tool_call_enter(MpiCall::Gatherv, self.id());
        let my_bytes = (elems * std::mem::size_of::<T>()) as u64;
        let slot: Slot = Some(Box::new(elems as u64));
        let (gen, done) = self.sync(p, "gatherv", Some(root), my_bytes, slot, |cc, total| {
            cc.gather(total as usize)
        });
        let out: Vec<usize> = if self.local_rank == root {
            let slots = done.slots.lock();
            slots
                .iter()
                .map(|s| {
                    *s.as_ref()
                        .expect("mpisim: gatherv slot missing")
                        .downcast_ref::<u64>()
                        .expect("mpisim: gatherv count mismatch") as usize
                })
                .collect()
        } else {
            Vec::new()
        };
        self.finish(gen, &done);
        // Match the full-fidelity accounting: the root also counts the
        // logical bytes it received.
        let recv_bytes: u64 = out
            .iter()
            .map(|&n| (n * std::mem::size_of::<T>()) as u64)
            .sum();
        p.tool_call_exit(MpiCall::Gatherv, self.id(), my_bytes + recv_bytes);
        out
    }

    /// Allgather: every rank receives every rank's contribution, indexed by
    /// local rank.
    pub fn allgather<T: Clone + Send + 'static>(&self, p: &mut Proc, data: Vec<T>) -> Vec<Vec<T>> {
        p.tool_call_enter(MpiCall::Allgather, self.id());
        let my_bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let slot: Slot = Some(Box::new(data));
        let psize = self.size();
        let (gen, done) = self.sync(p, "allgather", None, my_bytes, slot, |cc, total| {
            cc.allgather((total as usize) / psize.max(1))
        });
        let out: Vec<Vec<T>> = {
            let slots = done.slots.lock();
            slots
                .iter()
                .map(|s| {
                    s.as_ref()
                        .expect("mpisim: allgather slot missing")
                        .downcast_ref::<Vec<T>>()
                        .expect("mpisim: allgather datatype mismatch")
                        .clone()
                })
                .collect()
        };
        self.finish(gen, &done);
        let total_bytes: u64 = out
            .iter()
            .map(|v| (v.len() * std::mem::size_of::<T>()) as u64)
            .sum();
        p.tool_call_exit(MpiCall::Allgather, self.id(), total_bytes);
        out
    }

    /// Element-wise reduction to the root. All ranks must contribute
    /// vectors of equal length and the same associative `op`.
    pub fn reduce<T, F>(&self, p: &mut Proc, root: usize, data: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        assert!(root < self.size(), "mpisim: reduce root out of range");
        p.tool_call_enter(MpiCall::Reduce, self.id());
        let my_bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let psize = self.size();
        let slot: Slot = Some(Box::new(data));
        let (gen, done) = self.sync(p, "reduce", Some(root), my_bytes, slot, |cc, total| {
            cc.reduce((total as usize) / psize.max(1))
        });
        let out = if self.local_rank == root {
            Self::fold_slots(&done, psize, &op)
        } else {
            Vec::new()
        };
        self.finish(gen, &done);
        p.tool_call_exit(MpiCall::Reduce, self.id(), my_bytes);
        out
    }

    /// Element-wise all-reduce: all ranks receive the reduction.
    pub fn allreduce<T, F>(&self, p: &mut Proc, data: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        p.tool_call_enter(MpiCall::Allreduce, self.id());
        let my_bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let psize = self.size();
        let slot: Slot = Some(Box::new(data));
        let (gen, done) = self.sync(p, "allreduce", None, my_bytes, slot, |cc, total| {
            cc.allreduce((total as usize) / psize.max(1))
        });
        let out = Self::fold_slots(&done, psize, &op);
        self.finish(gen, &done);
        p.tool_call_exit(MpiCall::Allreduce, self.id(), my_bytes);
        out
    }

    fn fold_slots<T, F>(done: &Arc<Done>, psize: usize, op: &F) -> Vec<T>
    where
        T: Clone + 'static,
        F: Fn(&T, &T) -> T,
    {
        let slots = done.slots.lock();
        let first = slots[0]
            .as_ref()
            .expect("mpisim: reduce slot missing")
            .downcast_ref::<Vec<T>>()
            .expect("mpisim: reduce datatype mismatch");
        let mut acc = first.clone();
        for slot in slots.iter().take(psize).skip(1) {
            let v = slot
                .as_ref()
                .expect("mpisim: reduce slot missing")
                .downcast_ref::<Vec<T>>()
                .expect("mpisim: reduce datatype mismatch");
            assert_eq!(
                v.len(),
                acc.len(),
                "mpisim: reduce contributions have different lengths"
            );
            for (a, b) in acc.iter_mut().zip(v.iter()) {
                *a = op(a, b);
            }
        }
        acc
    }

    /// Scalar f64 allreduce with the minimum operator (the LULESH `dtmin`).
    pub fn allreduce_min_f64(&self, p: &mut Proc, x: f64) -> f64 {
        self.allreduce(p, vec![x], |a, b| a.min(*b))[0]
    }

    /// Scalar f64 allreduce with the sum operator.
    pub fn allreduce_sum_f64(&self, p: &mut Proc, x: f64) -> f64 {
        self.allreduce(p, vec![x], |a, b| a + b)[0]
    }

    /// Scalar f64 allreduce with the maximum operator.
    pub fn allreduce_max_f64(&self, p: &mut Proc, x: f64) -> f64 {
        self.allreduce(p, vec![x], |a, b| a.max(*b))[0]
    }

    /// All-to-all: rank `i` sends `chunks[j]` to rank `j`; returns the
    /// chunks received, indexed by source rank.
    pub fn alltoall<T: Send + 'static>(&self, p: &mut Proc, chunks: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(
            chunks.len(),
            self.size(),
            "mpisim: alltoall needs one chunk per rank"
        );
        p.tool_call_enter(MpiCall::Alltoall, self.id());
        let my_bytes: u64 = chunks
            .iter()
            .map(|c| (c.len() * std::mem::size_of::<T>()) as u64)
            .sum();
        let psize = self.size();
        let boxed: Vec<Option<Vec<T>>> = chunks.into_iter().map(Some).collect();
        let slot: Slot = Some(Box::new(boxed));
        let (gen, done) = self.sync(p, "alltoall", None, my_bytes, slot, |cc, total| {
            cc.alltoall((total as usize) / (psize * psize).max(1))
        });
        let out: Vec<Vec<T>> = {
            let mut slots = done.slots.lock();
            (0..psize)
                .map(|src| {
                    let any = slots[src].as_mut().expect("mpisim: alltoall slot missing");
                    let sender_chunks = any
                        .downcast_mut::<Vec<Option<Vec<T>>>>()
                        .expect("mpisim: alltoall datatype mismatch");
                    sender_chunks[self.local_rank]
                        .take()
                        .expect("mpisim: alltoall chunk already taken")
                })
                .collect()
        };
        self.finish(gen, &done);
        let recv_bytes: u64 = out
            .iter()
            .map(|v| (v.len() * std::mem::size_of::<T>()) as u64)
            .sum();
        p.tool_call_exit(MpiCall::Alltoall, self.id(), my_bytes + recv_bytes);
        out
    }

    /// Exclusive element-wise scan: rank `r` receives the reduction of the
    /// contributions of ranks `0..r`; rank 0 receives `identity`.
    pub fn exscan<T, F>(&self, p: &mut Proc, data: Vec<T>, identity: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        p.tool_call_enter(MpiCall::Scan, self.id());
        let my_bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let psize = self.size();
        let slot: Slot = Some(Box::new(data));
        let (gen, done) = self.sync(p, "exscan", None, my_bytes, slot, |cc, total| {
            cc.scan((total as usize) / psize.max(1))
        });
        let out = {
            let slots = done.slots.lock();
            let mut acc = identity;
            for slot in slots.iter().take(self.local_rank) {
                let v = slot
                    .as_ref()
                    .expect("mpisim: exscan slot missing")
                    .downcast_ref::<Vec<T>>()
                    .expect("mpisim: exscan datatype mismatch");
                assert_eq!(v.len(), acc.len(), "mpisim: exscan length mismatch");
                for (a, b) in acc.iter_mut().zip(v.iter()) {
                    *a = op(a, b);
                }
            }
            acc
        };
        self.finish(gen, &done);
        p.tool_call_exit(MpiCall::Scan, self.id(), my_bytes);
        out
    }

    /// Reduce-scatter with equal blocks: element-wise reduction of all
    /// contributions, then rank `r` receives block `r` of the result.
    /// Every rank must contribute `size() * block_len` elements.
    pub fn reduce_scatter_block<T, F>(&self, p: &mut Proc, data: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let psize = self.size();
        assert!(
            data.len().is_multiple_of(psize),
            "mpisim: reduce_scatter_block length {} not divisible by {psize}",
            data.len()
        );
        let block = data.len() / psize;
        p.tool_call_enter(MpiCall::Reduce, self.id());
        let my_bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let slot: Slot = Some(Box::new(data));
        let (gen, done) = self.sync(p, "reduce_scatter", None, my_bytes, slot, |cc, total| {
            // Same communication volume class as an allreduce of one block.
            cc.allreduce((total as usize) / (psize * psize).max(1))
        });
        let full = Self::fold_slots::<T, F>(&done, psize, &op);
        self.finish(gen, &done);
        let out: Vec<T> = full[self.local_rank * block..(self.local_rank + 1) * block].to_vec();
        p.tool_call_exit(MpiCall::Reduce, self.id(), my_bytes);
        out
    }

    /// Inclusive element-wise scan: rank `r` receives the reduction of the
    /// contributions of ranks `0..=r`.
    pub fn scan<T, F>(&self, p: &mut Proc, data: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        p.tool_call_enter(MpiCall::Scan, self.id());
        let my_bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let psize = self.size();
        let slot: Slot = Some(Box::new(data));
        let (gen, done) = self.sync(p, "scan", None, my_bytes, slot, |cc, total| {
            cc.scan((total as usize) / psize.max(1))
        });
        let out = {
            let slots = done.slots.lock();
            let mut acc = slots[0]
                .as_ref()
                .expect("mpisim: scan slot missing")
                .downcast_ref::<Vec<T>>()
                .expect("mpisim: scan datatype mismatch")
                .clone();
            for slot in slots.iter().take(self.local_rank + 1).skip(1) {
                let v = slot
                    .as_ref()
                    .expect("mpisim: scan slot missing")
                    .downcast_ref::<Vec<T>>()
                    .expect("mpisim: scan datatype mismatch");
                for (a, b) in acc.iter_mut().zip(v.iter()) {
                    *a = op(a, b);
                }
            }
            acc
        };
        self.finish(gen, &done);
        p.tool_call_exit(MpiCall::Scan, self.id(), my_bytes);
        out
    }

    // ------------------------------------------------------------------
    // Communicator construction
    // ------------------------------------------------------------------

    /// Split the communicator by color. Ranks passing `None` end up in no
    /// new communicator (MPI_UNDEFINED). Within one color, new ranks are
    /// ordered by `(key, old rank)`.
    pub fn split(&self, p: &mut Proc, color: Option<i32>, key: i32) -> Option<Comm> {
        p.tool_call_enter(MpiCall::CommSplit, self.id());

        // Phase 1: exchange (color, key) pairs; costed as a barrier.
        let slot: Slot = Some(Box::new((color, key)));
        let (xgen, done) = self.sync(p, "split.exchange", None, 0, slot, |cc, _| cc.barrier());
        let gen = xgen;
        let pairs: Vec<(Option<i32>, i32)> = {
            let slots = done.slots.lock();
            slots
                .iter()
                .map(|s| {
                    *s.as_ref()
                        .expect("mpisim: split slot missing")
                        .downcast_ref::<(Option<i32>, i32)>()
                        .expect("mpisim: split payload mismatch")
                })
                .collect()
        };
        self.finish(gen, &done);

        // Grouping (deterministic on every rank): colors in ascending
        // order; members ordered by (key, old local rank).
        let mut colors: Vec<i32> = pairs.iter().filter_map(|(c, _)| *c).collect();
        colors.sort_unstable();
        colors.dedup();
        let groups: Vec<(i32, Vec<usize>)> = colors
            .iter()
            .map(|&c| {
                let mut members: Vec<(i32, usize)> = pairs
                    .iter()
                    .enumerate()
                    .filter_map(|(local, (col, k))| (*col == Some(c)).then_some((*k, local)))
                    .collect();
                members.sort_unstable();
                (c, members.into_iter().map(|(_, local)| local).collect())
            })
            .collect();

        // Phase 2: old local rank 0 creates the shared objects and
        // publishes them; every member picks up its group's comm. The
        // child ids are *derived* from (parent id, split sequence, color)
        // rather than drawn from a global counter: disjoint communicators
        // may split concurrently, and a counter would hand out ids in
        // real-time order, breaking run-to-run determinism of everything
        // keyed by comm id (collective jitter streams). The top bit marks
        // derived ids so they never collide with counter-allocated ones.
        let slot: Slot = if self.local_rank == 0 {
            let created: Vec<(i32, Arc<CommShared>)> = groups
                .iter()
                .map(|(c, members)| {
                    let world_ranks: Vec<usize> =
                        members.iter().map(|&l| self.world_rank_of(l)).collect();
                    let derived = machine::noise::mix64(
                        machine::noise::mix64(self.shared.id.0 ^ (xgen << 24))
                            ^ (*c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    ) | (1 << 63);
                    (
                        *c,
                        p.registry.register_with_id(CommId(derived), world_ranks),
                    )
                })
                .collect();
            Some(Box::new(created))
        } else {
            None
        };
        let (gen, done) = self.sync(p, "split.create", None, 0, slot, |cc, _| cc.barrier());
        let result = color.and_then(|my_color| {
            let slots = done.slots.lock();
            let created = slots[0]
                .as_ref()
                .expect("mpisim: split create slot missing")
                .downcast_ref::<Vec<(i32, Arc<CommShared>)>>()
                .expect("mpisim: split create mismatch");
            created.iter().find_map(|(c, shared)| {
                (*c == my_color).then(|| Comm::from_shared(shared.clone(), p.world_rank))
            })
        });
        self.finish(gen, &done);
        p.tool_call_exit(MpiCall::CommSplit, self.id(), 0);
        result
    }

    /// Duplicate the communicator (same group, fresh id).
    pub fn dup(&self, p: &mut Proc) -> Comm {
        p.tool_call_enter(MpiCall::CommDup, self.id());
        let dup = self
            .split(p, Some(0), self.local_rank as i32)
            .expect("mpisim: dup split cannot fail");
        p.tool_call_exit(MpiCall::CommDup, self.id(), 0);
        dup
    }
}
