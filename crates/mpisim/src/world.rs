//! World construction and the SPMD launch harness.
//!
//! [`WorldBuilder`] configures rank count, machine model, seed, tools and
//! the execution [`Engine`], then [`WorldBuilder::run`] executes the SPMD
//! closure on every rank and reports per-rank results. Two engines share
//! the same mailbox/rendezvous substrate:
//!
//! * [`Engine::Des`] (default on x86-64) — every rank is a cooperative
//!   fiber driven by a single-threaded virtual-time event queue
//!   (`crate::des`); blocking operations suspend the fiber instead of an
//!   OS thread, which is what makes 16k+ rank worlds practical.
//! * [`Engine::Threads`] — one OS thread per rank, blocking on condvars;
//!   the portable fallback and the reference for engine-equivalence tests.
//!
//! Rank panics poison the world so blocked peers unwind instead of
//! deadlocking, and the first failure is reported as a [`RunError`]. Under
//! the DES engine a genuine communication deadlock (every live rank
//! blocked, nothing in flight) is detected and reported too, instead of
//! hanging the process.

use crate::comm::{CommShared, Registry};
use crate::diag::{self, Diagnostic};
use crate::error::{RunError, POISONED_MSG};
use crate::event::MpiEvent;
use crate::mailbox::{MailboxSet, Poison};
use crate::proc::Proc;
use crate::tool::{Tool, ToolSet};
use machine::{presets, MachineModel, VTime};
use std::sync::Arc;

/// How the ranks of a world execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// One OS thread per rank (portable reference engine).
    Threads,
    /// Single-threaded discrete-event scheduler over cooperative fibers
    /// (x86-64 only; falls back to `Threads` elsewhere).
    Des,
}

impl Engine {
    /// The default engine: `des` where supported, honoring the
    /// `MPISIM_ENGINE` environment variable (`threads` | `des`).
    pub fn default_from_env() -> Engine {
        match std::env::var("MPISIM_ENGINE").as_deref() {
            Ok("threads") => Engine::Threads,
            Ok("des") => Engine::Des,
            Ok(other) => {
                eprintln!("mpisim: unknown MPISIM_ENGINE '{other}', using des");
                Engine::Des
            }
            Err(_) => Engine::Des,
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;
    fn from_str(s: &str) -> Result<Engine, String> {
        match s {
            "threads" => Ok(Engine::Threads),
            "des" => Ok(Engine::Des),
            other => Err(format!("unknown engine '{other}' (threads|des)")),
        }
    }
}

/// Configuration and launch entry point for a simulated MPI world.
pub struct WorldBuilder {
    nranks: usize,
    machine: MachineModel,
    seed: u64,
    tools: Vec<Arc<dyn Tool>>,
    engine: Engine,
    stack_size: usize,
    match_controller: Option<Arc<dyn crate::control::MatchController>>,
}

impl WorldBuilder {
    /// A world of `nranks` ranks on the `ideal()` machine with seed 0.
    pub fn new(nranks: usize) -> Self {
        WorldBuilder {
            nranks,
            machine: presets::ideal(),
            seed: 0,
            tools: Vec::new(),
            engine: Engine::default_from_env(),
            stack_size: default_stack_size(),
            match_controller: None,
        }
    }

    /// Select the machine model.
    pub fn machine(mut self, machine: MachineModel) -> Self {
        self.machine = machine;
        self
    }

    /// Select the noise/placement seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach a tool (PMPI-style observer). Tools fire in attach order.
    pub fn tool(mut self, tool: Arc<dyn Tool>) -> Self {
        self.tools.push(tool);
        self
    }

    /// Select the execution engine (overrides `MPISIM_ENGINE`).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Per-rank fiber stack size for the DES engine (ignored by the
    /// threads engine). Untouched pages are never committed, so a generous
    /// size costs address space, not memory.
    pub fn stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Attach a [`MatchController`](crate::MatchController) that resolves
    /// every wildcard-receive matching (the dynamic-verification hook).
    /// Without one, wildcard receives match in arrival order.
    pub fn match_controller(
        mut self,
        controller: Arc<dyn crate::control::MatchController>,
    ) -> Self {
        self.match_controller = Some(controller);
        self
    }

    /// Launch the world: run `f` as the SPMD program of every rank.
    ///
    /// Returns per-rank results and final virtual clocks. The rank function
    /// runs between implicit `Init`/`Finalize` tool events (which is where
    /// the paper's `MPI_MAIN` section opens and closes).
    pub fn run<R, F>(self, f: F) -> Result<RunReport<R>, RunError>
    where
        R: Send,
        F: Fn(&mut Proc) -> R + Send + Sync,
    {
        if self.nranks == 0 {
            return Err(RunError::NoRanks);
        }
        let shared = WorldShared::build(&self);
        match self.engine {
            #[cfg(target_arch = "x86_64")]
            Engine::Des => run_des(&shared, self.nranks, self.seed, self.stack_size, &f),
            #[cfg(not(target_arch = "x86_64"))]
            Engine::Des => run_threads(&shared, self.nranks, self.seed, &f),
            Engine::Threads => run_threads(&shared, self.nranks, self.seed, &f),
        }
    }
}

/// The per-engine stack default: half a MiB of (lazily committed) stack
/// per fiber, overridable with `WorldBuilder::stack_size`.
fn default_stack_size() -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        crate::fiber::DEFAULT_STACK_SIZE
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        512 * 1024
    }
}

/// The engine-independent substrate of one world.
struct WorldShared {
    machine: Arc<MachineModel>,
    poison: Arc<Poison>,
    mailboxes: Arc<MailboxSet>,
    registry: Arc<Registry>,
    world_comm: Arc<CommShared>,
    tools: ToolSet,
}

impl WorldShared {
    fn build(b: &WorldBuilder) -> WorldShared {
        let machine = Arc::new(b.machine.clone());
        let poison = Arc::new(Poison::default());
        let mut mailboxes = MailboxSet::new(b.nranks, poison.clone());
        mailboxes.controller = b.match_controller.clone();
        let mailboxes = Arc::new(mailboxes);
        let registry = Arc::new(Registry::new(machine.topology));
        let world_comm = registry.register((0..b.nranks).collect());
        WorldShared {
            machine,
            poison,
            mailboxes,
            registry,
            world_comm,
            tools: ToolSet::from_tools(b.tools.clone()),
        }
    }
}

/// Execute one rank's body inside the unwind net shared by both engines:
/// Init/Finalize raises happen inside the net (a tool aborting at either
/// event must produce a `RunError`, not crash the harness), and a failure
/// poisons the world before being packaged for the report.
fn run_rank<R, F>(shared: &WorldShared, mut proc: Proc, f: &F) -> Result<(R, VTime), RankFailure>
where
    F: Fn(&mut Proc) -> R,
{
    let nranks = proc.world_size();
    let rank = proc.world_rank();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        proc.raise(MpiEvent::Init {
            size: nranks,
            time: proc.now(),
        });
        let value = f(&mut proc);
        proc.raise(MpiEvent::Finalize { time: proc.now() });
        (value, proc.now())
    }));
    result.map_err(|payload| {
        // Poison before extracting the message so blocked peers wake
        // promptly (under DES: get re-queued and unwind when resumed).
        shared.mailboxes.poison_all();
        shared.registry.wake_all();
        // Unwinding stayed on this thread (fibers share the scheduler
        // thread, but each failing rank drains the channel before any
        // other rank can deposit), so any diagnostics deposited by
        // `diag::abort_with` are ours.
        let diagnostics = diag::take_pending();
        let mut message = panic_message(payload);
        if message != POISONED_MSG && diagnostics.is_empty() {
            let context = shared.tools.rank_context(rank);
            if !context.is_empty() {
                message = format!("{message} [{}]", context.join("; "));
            }
        }
        RankFailure {
            message,
            diagnostics,
        }
    })
}

/// The threads engine: one OS thread per rank, parked on condvars while
/// blocked. Portable, but thread spawn/park costs cap practical world
/// sizes around the low thousands.
fn run_threads<R, F>(
    shared: &WorldShared,
    nranks: usize,
    seed: u64,
    f: &F,
) -> Result<RunReport<R>, RunError>
where
    R: Send,
    F: Fn(&mut Proc) -> R + Send + Sync,
{
    let outcomes: Vec<Result<(R, VTime), RankFailure>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nranks)
            .map(|rank| {
                scope.spawn(move || {
                    let proc = Proc::new(
                        rank,
                        nranks,
                        shared.machine.clone(),
                        shared.tools.clone(),
                        shared.mailboxes.clone(),
                        shared.registry.clone(),
                        seed,
                        shared.world_comm.clone(),
                    );
                    run_rank(shared, proc, f)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mpisim: rank thread itself crashed"))
            .collect()
    });
    finish_run(shared, outcomes, false)
}

/// The DES engine: every rank is a fiber, driven to completion by the
/// virtual-time scheduler on the calling thread.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // fiber spawn: lifetime erasure justified below
fn run_des<R, F>(
    shared: &WorldShared,
    nranks: usize,
    seed: u64,
    stack_size: usize,
    f: &F,
) -> Result<RunReport<R>, RunError>
where
    R: Send,
    F: Fn(&mut Proc) -> R + Send + Sync,
{
    use std::cell::RefCell;
    use std::rc::Rc;

    /// One rank's result slot, filled in when its fiber finishes.
    type Outcome<R> = Option<Result<(R, VTime), RankFailure>>;

    let scheduler = Rc::new(crate::des::Scheduler::new(nranks));
    let _active = crate::des::install(scheduler.clone());
    let outcomes: Rc<RefCell<Vec<Outcome<R>>>> =
        Rc::new(RefCell::new((0..nranks).map(|_| None).collect()));
    let mut fibers: Vec<crate::fiber::Fiber> = (0..nranks)
        .map(|rank| {
            let outcomes = outcomes.clone();
            let body = move || {
                let proc = Proc::new(
                    rank,
                    nranks,
                    shared.machine.clone(),
                    shared.tools.clone(),
                    shared.mailboxes.clone(),
                    shared.registry.clone(),
                    seed,
                    shared.world_comm.clone(),
                );
                let outcome = run_rank(shared, proc, f);
                outcomes.borrow_mut()[rank] = Some(outcome);
            };
            // SAFETY: the fibers borrow `shared` and `f`, which outlive
            // them in this function, and `drive` runs every fiber to
            // completion before we return (panics unwind through the
            // fiber drop glue, which only frees stacks).
            unsafe { crate::fiber::Fiber::new(stack_size, Box::new(body)) }
        })
        .collect();
    scheduler.drive(&mut fibers, &|| shared.poison.set());
    drop(fibers);
    let outcomes: Vec<Result<(R, VTime), RankFailure>> = Rc::into_inner(outcomes)
        .expect("fibers dropped")
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every fiber completed"))
        .collect();
    finish_run(shared, outcomes, scheduler.deadlocked())
}

/// Shared epilogue: split outcomes into results and failures, rank the
/// failures (structured diagnostics > root-cause panic > poison fallout)
/// and notify tools of completion.
fn finish_run<R>(
    shared: &WorldShared,
    outcomes: Vec<Result<(R, VTime), RankFailure>>,
    deadlocked: bool,
) -> Result<RunReport<R>, RunError> {
    let nranks = outcomes.len();
    let mut results = Vec::with_capacity(nranks);
    let mut final_times = Vec::with_capacity(nranks);
    let mut failures: Vec<(usize, RankFailure)> = Vec::new();
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok((value, time)) => {
                results.push(value);
                final_times.push(time);
            }
            Err(failure) => failures.push((rank, failure)),
        }
    }
    if !failures.is_empty() {
        // Structured findings take precedence over raw panic strings.
        let diagnostics: Vec<Diagnostic> = failures
            .iter()
            .flat_map(|(_, f)| f.diagnostics.iter().cloned())
            .collect();
        if !diagnostics.is_empty() {
            return Err(RunError::Diagnosed(diag::dedup(diagnostics)));
        }
        // Report the root cause, not the poison-induced unwinds of the
        // peers that were blocked when the world went down.
        let (rank, message) = failures
            .iter()
            .find(|(_, f)| f.message != POISONED_MSG)
            .map(|(rank, f)| (*rank, f.message.clone()))
            .unwrap_or_else(|| {
                let rank = failures[0].0;
                let message = if deadlocked {
                    format!(
                        "deadlock: all {} live ranks blocked with nothing in flight \
                         (first blocked rank: {rank})",
                        failures.len()
                    )
                } else {
                    "poisoned (root cause lost)".into()
                };
                (rank, message)
            });
        return Err(RunError::RankPanicked { rank, message });
    }
    shared.tools.complete(nranks);
    let makespan = final_times.iter().copied().max().unwrap_or(VTime::ZERO);
    Ok(RunReport {
        results,
        final_times,
        makespan,
    })
}

/// What a failed rank hands back to the harness.
struct RankFailure {
    message: String,
    diagnostics: Vec<Diagnostic>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Outcome of a successful run.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-rank return values, indexed by world rank.
    pub results: Vec<R>,
    /// Per-rank final virtual clocks.
    pub final_times: Vec<VTime>,
    /// The latest final clock — the simulated wall time of the job.
    pub makespan: VTime,
}

impl<R> RunReport<R> {
    /// Simulated wall time in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.makespan.as_secs_f64()
    }
}
