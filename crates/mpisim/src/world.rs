//! World construction and the SPMD launch harness.
//!
//! [`WorldBuilder`] configures rank count, machine model, seed and tools,
//! then [`WorldBuilder::run`] spawns one OS thread per rank, hands each a
//! [`Proc`], and executes the SPMD closure. Rank panics poison the world so
//! blocked peers unwind instead of deadlocking, and the first failure is
//! reported as a [`RunError`].

use crate::comm::{CommShared, Registry};
use crate::diag::{self, Diagnostic};
use crate::error::{RunError, POISONED_MSG};
use crate::event::MpiEvent;
use crate::mailbox::{MailboxSet, Poison};
use crate::proc::Proc;
use crate::tool::{Tool, ToolSet};
use machine::{presets, MachineModel, VTime};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Configuration and launch entry point for a simulated MPI world.
pub struct WorldBuilder {
    nranks: usize,
    machine: MachineModel,
    seed: u64,
    tools: Vec<Arc<dyn Tool>>,
}

impl WorldBuilder {
    /// A world of `nranks` ranks on the `ideal()` machine with seed 0.
    pub fn new(nranks: usize) -> Self {
        WorldBuilder {
            nranks,
            machine: presets::ideal(),
            seed: 0,
            tools: Vec::new(),
        }
    }

    /// Select the machine model.
    pub fn machine(mut self, machine: MachineModel) -> Self {
        self.machine = machine;
        self
    }

    /// Select the noise/placement seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach a tool (PMPI-style observer). Tools fire in attach order.
    pub fn tool(mut self, tool: Arc<dyn Tool>) -> Self {
        self.tools.push(tool);
        self
    }

    /// Launch the world: run `f` as the SPMD program of every rank.
    ///
    /// Returns per-rank results and final virtual clocks. The rank function
    /// runs between implicit `Init`/`Finalize` tool events (which is where
    /// the paper's `MPI_MAIN` section opens and closes).
    pub fn run<R, F>(self, f: F) -> Result<RunReport<R>, RunError>
    where
        R: Send,
        F: Fn(&mut Proc) -> R + Send + Sync,
    {
        if self.nranks == 0 {
            return Err(RunError::NoRanks);
        }
        let nranks = self.nranks;
        let machine = Arc::new(self.machine);
        let poison = Arc::new(Poison::default());
        let mailboxes = Arc::new(MailboxSet::new(nranks, poison.clone()));
        let registry = Arc::new(Registry::new(machine.topology));
        let world_shared: Arc<CommShared> = registry.register((0..nranks).collect());
        let tools = ToolSet::from_tools(self.tools);
        let seq = Arc::new(AtomicU64::new(0));
        let seed = self.seed;

        let outcomes: Vec<Result<(R, VTime), RankFailure>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nranks)
                .map(|rank| {
                    let machine = machine.clone();
                    let mailboxes = mailboxes.clone();
                    let registry = registry.clone();
                    let world_shared = world_shared.clone();
                    let tools = tools.clone();
                    let seq = seq.clone();
                    let f = &f;
                    scope.spawn(move || {
                        let mut proc = Proc::new(
                            rank,
                            nranks,
                            machine,
                            tools.clone(),
                            mailboxes.clone(),
                            registry.clone(),
                            seq,
                            seed,
                            world_shared,
                        );
                        // Init/Finalize raises stay inside the unwind net:
                        // a tool aborting at either event must produce a
                        // RunError, not crash the thread outright.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            proc.raise(MpiEvent::Init {
                                size: nranks,
                                time: proc.now(),
                            });
                            let value = f(&mut proc);
                            proc.raise(MpiEvent::Finalize { time: proc.now() });
                            (value, proc.now())
                        }));
                        result.map_err(|payload| {
                            // Poison before extracting the message so
                            // blocked peers wake promptly.
                            mailboxes.poison_all();
                            registry.wake_all();
                            // Unwinding stayed on this thread, so any
                            // diagnostics deposited by `diag::abort_with`
                            // are in this thread's channel.
                            let diagnostics = diag::take_pending();
                            let mut message = panic_message(payload);
                            if message != POISONED_MSG && diagnostics.is_empty() {
                                let context = tools.rank_context(rank);
                                if !context.is_empty() {
                                    message = format!("{message} [{}]", context.join("; "));
                                }
                            }
                            RankFailure {
                                message,
                                diagnostics,
                            }
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("mpisim: rank thread itself crashed"))
                .collect()
        });

        let mut results = Vec::with_capacity(nranks);
        let mut final_times = Vec::with_capacity(nranks);
        let mut failures: Vec<(usize, RankFailure)> = Vec::new();
        for (rank, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok((value, time)) => {
                    results.push(value);
                    final_times.push(time);
                }
                Err(failure) => failures.push((rank, failure)),
            }
        }
        if !failures.is_empty() {
            // Structured findings take precedence over raw panic strings.
            let diagnostics: Vec<Diagnostic> = failures
                .iter()
                .flat_map(|(_, f)| f.diagnostics.iter().cloned())
                .collect();
            if !diagnostics.is_empty() {
                return Err(RunError::Diagnosed(diag::dedup(diagnostics)));
            }
            // Report the root cause, not the poison-induced unwinds of the
            // peers that were blocked when the world went down.
            let (rank, message) = failures
                .iter()
                .find(|(_, f)| f.message != POISONED_MSG)
                .map(|(rank, f)| (*rank, f.message.clone()))
                .unwrap_or_else(|| (failures[0].0, "poisoned (root cause lost)".into()));
            return Err(RunError::RankPanicked { rank, message });
        }
        tools.complete(nranks);
        let makespan = final_times.iter().copied().max().unwrap_or(VTime::ZERO);
        Ok(RunReport {
            results,
            final_times,
            makespan,
        })
    }
}

/// What a failed rank thread hands back to the harness.
struct RankFailure {
    message: String,
    diagnostics: Vec<Diagnostic>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Outcome of a successful run.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-rank return values, indexed by world rank.
    pub results: Vec<R>,
    /// Per-rank final virtual clocks.
    pub final_times: Vec<VTime>,
    /// The latest final clock — the simulated wall time of the job.
    pub makespan: VTime,
}

impl<R> RunReport<R> {
    /// Simulated wall time in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.makespan.as_secs_f64()
    }
}
