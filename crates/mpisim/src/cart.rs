//! Cartesian communicators: a communicator bundled with a process grid —
//! the useful parts of `MPI_Cart_create` / `MPI_Cart_shift` /
//! `MPI_Neighbor_*` for stencil codes.

use crate::comm::{Comm, Recvd};
use crate::proc::Proc;
use crate::topo::{dims_create, CartGrid};
use crate::{Src, TagSel};

/// A communicator with cartesian (non-periodic) topology.
///
/// Ranks keep their order (`reorder = false` in MPI terms): local rank i
/// of the underlying communicator sits at `grid.coords_of(i)`.
#[derive(Clone)]
pub struct CartComm {
    comm: Comm,
    grid: CartGrid,
}

impl CartComm {
    /// Attach a grid to a communicator; the grid size must equal the
    /// communicator size.
    pub fn new(comm: Comm, grid: CartGrid) -> CartComm {
        assert_eq!(
            grid.size(),
            comm.size(),
            "mpisim: cartesian grid size {} != communicator size {}",
            grid.size(),
            comm.size()
        );
        CartComm { comm, grid }
    }

    /// Build a balanced `ndims`-dimensional grid over the whole
    /// communicator (the `MPI_Dims_create` + `MPI_Cart_create` pattern).
    pub fn balanced(comm: Comm, ndims: usize) -> CartComm {
        let dims = dims_create(comm.size(), ndims);
        CartComm::new(comm, CartGrid::new(dims))
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// The process grid.
    pub fn grid(&self) -> &CartGrid {
        &self.grid
    }

    /// This rank's grid coordinates.
    pub fn coords(&self) -> Vec<usize> {
        self.grid.coords_of(self.comm.rank())
    }

    /// `MPI_Cart_shift`: the ranks one step down/up along `dim`
    /// (`None` at the boundary, like `MPI_PROC_NULL`).
    pub fn shift(&self, dim: usize) -> (Option<usize>, Option<usize>) {
        let me = self.comm.rank();
        (
            self.grid.neighbor(me, dim, -1),
            self.grid.neighbor(me, dim, 1),
        )
    }

    /// Bidirectional halo exchange along one dimension: sends `low_data`
    /// to the lower neighbour and `high_data` to the upper one, returning
    /// `(from_low, from_high)` — the classic stencil shift-exchange.
    ///
    /// Both sends are posted before either receive, so the pattern is
    /// deadlock-free on lines *and* on periodic rings. Chained sendrecvs
    /// would cycle on a ring: every rank's first call waits for an upward
    /// message its neighbour only sends in its *second* call.
    ///
    /// `tag` namespaces concurrent exchanges (use a distinct tag per field
    /// per dimension).
    pub fn shift_exchange<T: Clone + Send + 'static>(
        &self,
        p: &mut Proc,
        dim: usize,
        tag: i32,
        low_data: &[T],
        high_data: &[T],
    ) -> (Option<Recvd<T>>, Option<Recvd<T>>) {
        let (low, high) = self.shift(dim);
        // Tags: messages travelling downwards vs upwards.
        let down_tag = tag * 2;
        let up_tag = tag * 2 + 1;
        if let Some(nbr) = low {
            self.comm.isend(p, nbr, down_tag, low_data).wait(p);
        }
        if let Some(nbr) = high {
            self.comm.isend(p, nbr, up_tag, high_data).wait(p);
        }
        let from_low = low.map(|nbr| self.comm.recv(p, Src::Rank(nbr), TagSel::Is(up_tag)));
        let from_high = high.map(|nbr| self.comm.recv(p, Src::Rank(nbr), TagSel::Is(down_tag)));
        (from_low, from_high)
    }

    /// All face neighbours' local ranks.
    pub fn neighbors(&self) -> Vec<usize> {
        self.grid.face_neighbors(self.comm.rank())
    }
}

impl std::fmt::Debug for CartComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CartComm")
            .field("dims", &self.grid.dims())
            .field("coords", &self.coords())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldBuilder;

    #[test]
    fn balanced_construction_and_coords() {
        let report = WorldBuilder::new(12)
            .run(|p| {
                let cart = CartComm::balanced(p.world(), 2);
                assert_eq!(cart.grid().dims(), &[4, 3]);
                cart.coords()
            })
            .unwrap();
        assert_eq!(report.results[0], vec![0, 0]);
        assert_eq!(report.results[11], vec![3, 2]);
    }

    #[test]
    #[should_panic(expected = "grid size")]
    fn size_mismatch_rejected() {
        WorldBuilder::new(4)
            .run(|p| {
                let _ = CartComm::new(p.world(), CartGrid::new(vec![3]));
            })
            .unwrap();
    }

    #[test]
    fn shift_identifies_neighbors() {
        let report = WorldBuilder::new(6)
            .run(|p| {
                // 3x2 grid.
                let cart = CartComm::new(p.world(), CartGrid::new(vec![3, 2]));
                (cart.shift(0), cart.shift(1))
            })
            .unwrap();
        // Rank 0 at (0,0): no lower neighbours; (1,0)=rank 2 above, (0,1)=rank 1.
        assert_eq!(report.results[0], ((None, Some(2)), (None, Some(1))));
        // Rank 3 at (1,1): down dim0 -> rank 1, up dim0 -> rank 5;
        // down dim1 -> rank 2, up dim1 -> None.
        assert_eq!(report.results[3], ((Some(1), Some(5)), (Some(2), None)));
    }

    #[test]
    fn shift_exchange_moves_boundary_data() {
        // 1-D ring-less line of 4: each rank sends its rank id as both
        // boundaries; interior ranks see both neighbours' ids.
        let report = WorldBuilder::new(4)
            .run(|p| {
                let cart = CartComm::balanced(p.world(), 1);
                let me = [p.world_rank() as u32];
                let (from_low, from_high) = cart.shift_exchange(p, 0, 7, &me, &me);
                (from_low.map(|m| m.data[0]), from_high.map(|m| m.data[0]))
            })
            .unwrap();
        assert_eq!(report.results[0], (None, Some(1)));
        assert_eq!(report.results[1], (Some(0), Some(2)));
        assert_eq!(report.results[2], (Some(1), Some(3)));
        assert_eq!(report.results[3], (Some(2), None));
    }

    #[test]
    fn periodic_ring_exchange_does_not_deadlock() {
        // Regression: chained sendrecvs cycle on a torus; the fixed
        // post-sends-first pattern must complete and wrap values around.
        let report = WorldBuilder::new(3)
            .run(|p| {
                let cart = CartComm::new(p.world(), CartGrid::new_periodic(vec![3], vec![true]));
                let me = [p.world_rank() as u32];
                let (fl, fh) = cart.shift_exchange(p, 0, 7, &me, &me);
                (fl.map(|m| m.data[0]), fh.map(|m| m.data[0]))
            })
            .unwrap();
        assert_eq!(report.results[0], (Some(2), Some(1)));
        assert_eq!(report.results[2], (Some(1), Some(0)));
    }

    #[test]
    fn multi_dim_exchanges_do_not_cross() {
        // Two fields exchanged along two dims with distinct tags: values
        // must land with the right neighbour along the right axis.
        let report = WorldBuilder::new(9)
            .run(|p| {
                let cart = CartComm::new(p.world(), CartGrid::new(vec![3, 3]));
                let coords = cart.coords();
                let field_a = [coords[0] as u32 * 100];
                let field_b = [coords[1] as u32 * 100 + 1];
                let (a_low, _) = cart.shift_exchange(p, 0, 1, &field_a, &field_a);
                let (b_low, _) = cart.shift_exchange(p, 1, 2, &field_b, &field_b);
                (a_low.map(|m| m.data[0]), b_low.map(|m| m.data[0]))
            })
            .unwrap();
        // Center rank (1,1) = rank 4: from dim0-low neighbour (0,1) gets
        // 0*100; from dim1-low neighbour (1,0) gets 0*100+1.
        assert_eq!(report.results[4], (Some(0), Some(1)));
        // Rank 8 at (2,2): from (1,2) gets 100; from (2,1) gets 101.
        assert_eq!(report.results[8], (Some(100), Some(101)));
    }
}
