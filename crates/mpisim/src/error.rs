//! Run-level error reporting.
//!
//! Inside a rank, misuse (bad peer rank, datatype mismatch, malformed
//! collective) panics — mirroring `MPI_ERRORS_ARE_FATAL`, the default error
//! handler of every real MPI. The launch harness catches rank panics,
//! poisons the world so blocked peers unwind instead of deadlocking, and
//! surfaces the first failure as a [`RunError`].

use std::fmt;

/// Why a simulated run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A rank panicked; carries the rank id and the panic payload (when it
    /// was a string).
    RankPanicked { rank: usize, message: String },
    /// The run was configured with zero ranks.
    NoRanks,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} failed: {message}")
            }
            RunError::NoRanks => write!(f, "world must have at least one rank"),
        }
    }
}

impl std::error::Error for RunError {}

/// Panic message used when a rank unwinds *because* another rank already
/// poisoned the world; such secondary panics are suppressed in reports.
pub const POISONED_MSG: &str = "mpisim: world poisoned by another rank's failure";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = RunError::RankPanicked {
            rank: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "rank 3 failed: boom");
        assert_eq!(RunError::NoRanks.to_string(), "world must have at least one rank");
    }
}
