//! Run-level error reporting.
//!
//! Inside a rank, misuse (bad peer rank, datatype mismatch, malformed
//! collective) panics — mirroring `MPI_ERRORS_ARE_FATAL`, the default error
//! handler of every real MPI. The launch harness catches rank panics,
//! poisons the world so blocked peers unwind instead of deadlocking, and
//! surfaces the first failure as a [`RunError`].
//!
//! Correctness tools report through a richer channel: they abort with
//! structured [`Diagnostic`]s (see [`crate::diag`]) and the harness returns
//! [`RunError::Diagnosed`] carrying the full findings instead of an opaque
//! panic string.

use crate::diag::{self, Diagnostic};
use std::fmt;

/// Why a simulated run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A rank panicked; carries the rank id and the panic payload (when it
    /// was a string).
    RankPanicked { rank: usize, message: String },
    /// The run was configured with zero ranks.
    NoRanks,
    /// A correctness tool aborted the run with structured findings
    /// (deduplicated, in report order).
    Diagnosed(Vec<Diagnostic>),
}

impl RunError {
    /// The diagnostics carried by a [`RunError::Diagnosed`], if any.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        match self {
            RunError::Diagnosed(diags) => diags,
            _ => &[],
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} failed: {message}")
            }
            RunError::NoRanks => write!(f, "world must have at least one rank"),
            RunError::Diagnosed(diags) => {
                write!(
                    f,
                    "run aborted with {} diagnostic{}:\n{}",
                    diags.len(),
                    if diags.len() == 1 { "" } else { "s" },
                    diag::report(diags).trim_end()
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Panic message used when a rank unwinds *because* another rank already
/// poisoned the world; such secondary panics are suppressed in reports.
pub const POISONED_MSG: &str = "mpisim: world poisoned by another rank's failure";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = RunError::RankPanicked {
            rank: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "rank 3 failed: boom");
        assert_eq!(
            RunError::NoRanks.to_string(),
            "world must have at least one rank"
        );
    }

    #[test]
    fn diagnosed_display_includes_messages() {
        let d = Diagnostic {
            kind: crate::diag::DiagnosticKind::SectionMisuse {
                label_stack: vec!["a".into()],
                event_index: 2,
            },
            severity: crate::diag::Severity::Error,
            ranks: vec![1],
            comm: None,
            message: "imperfect nesting on rank 1".into(),
        };
        let e = RunError::Diagnosed(vec![d.clone()]);
        assert!(e.to_string().contains("imperfect nesting on rank 1"));
        assert_eq!(e.diagnostics(), &[d]);
        assert!(RunError::NoRanks.diagnostics().is_empty());
    }
}
