//! Generation-counted rendezvous: the synchronization core of collectives.
//!
//! Every communicator owns one [`Rendezvous`]. A collective proceeds in two
//! phases:
//!
//! 1. **Arrive.** Each participant deposits its virtual entry time, its
//!    declared payload bytes and an optional data slot. The *last* arriver
//!    computes the collective's exit time from all entries (typically
//!    `max(entry) + cost`) and publishes a [`Done`] record.
//! 2. **Read.** Every participant reads the exit time and whatever data
//!    slots the operation semantics give it; the last reader reclaims the
//!    record.
//!
//! Because collectives on one communicator are totally ordered per rank
//! (MPI semantics), arrivals always target the current accumulating
//! generation; earlier generations only linger in `done` until their last
//! reader leaves. The per-generation records let fast ranks start the next
//! collective while slow ranks still read the previous one.

use crate::mailbox::Poison;
use machine::VTime;
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Type-erased data slot deposited by one participant.
pub type Slot = Option<Box<dyn Any + Send>>;

/// View of the arrival data handed to the exit-time computation.
pub struct RvView<'a> {
    /// Entry time of each local rank.
    pub entries: &'a [VTime],
    /// Sum of the byte counts declared by all participants.
    pub total_bytes: u64,
    /// Generation number of this collective on this communicator
    /// (stable across ranks — usable as a deterministic jitter seed).
    pub gen: u64,
    /// Number of participants.
    pub p: usize,
}

impl RvView<'_> {
    /// The latest entry time — when the collective can actually start.
    pub fn max_entry(&self) -> VTime {
        self.entries.iter().copied().max().unwrap_or(VTime::ZERO)
    }
}

/// Published result of one completed collective generation.
pub struct Done {
    /// Common exit time for every participant.
    pub exit: VTime,
    /// Sum of the byte counts declared by all participants — what the
    /// exit-time computation priced (surfaces on `CollectiveExit` events).
    pub total_bytes: u64,
    /// The data slots, indexed by local rank. Readers may take or clone
    /// from them under the lock according to the operation's semantics.
    pub slots: Mutex<Vec<Slot>>,
    remaining_readers: Mutex<usize>,
}

struct RvState {
    /// Generation currently accumulating arrivals.
    gen: u64,
    arrived: usize,
    entries: Vec<VTime>,
    slots: Vec<Slot>,
    total_bytes: u64,
    /// Operation label of the first arriver, for mismatch detection.
    op: Option<&'static str>,
    /// Completed generations awaiting readers.
    done: HashMap<u64, Arc<Done>>,
}

/// The rendezvous object of one communicator.
pub struct Rendezvous {
    p: usize,
    state: Mutex<RvState>,
    cv: Condvar,
    /// World ranks of the participants, indexed by local rank — who the
    /// DES scheduler must wake when the collective completes. `None` for
    /// standalone rendezvous (unit tests) that only run under threads.
    members: Option<Arc<Vec<usize>>>,
}

impl Rendezvous {
    /// A rendezvous for `p` participants.
    pub fn new(p: usize) -> Self {
        Rendezvous::with_members(p, None)
    }

    /// A rendezvous whose participants are the given world ranks (indexed
    /// by local rank). The registry always uses this form so the DES
    /// engine knows which fibers to revive.
    pub fn with_members(p: usize, members: Option<Arc<Vec<usize>>>) -> Self {
        debug_assert!(members.as_ref().is_none_or(|m| m.len() == p));
        Rendezvous {
            p,
            state: Mutex::new(RvState {
                gen: 0,
                arrived: 0,
                entries: vec![VTime::ZERO; p],
                slots: (0..p).map(|_| None).collect(),
                total_bytes: 0,
                op: None,
                done: HashMap::new(),
            }),
            cv: Condvar::new(),
            members,
        }
    }

    /// Under the DES engine, make every (other) participant runnable.
    #[cfg(target_arch = "x86_64")]
    fn des_wake_members(&self, scheduler: &crate::des::Scheduler) {
        if let Some(members) = &self.members {
            for &world_rank in members.iter() {
                scheduler.wake(world_rank);
            }
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.p
    }

    /// Execute one collective phase for local rank `local`.
    ///
    /// `op` is a static label used to detect mismatched collectives (one
    /// rank in a barrier while another is in a bcast), which panics as it
    /// would abort a real MPI program. `compute_exit` runs exactly once per
    /// generation, on the last arriving rank's thread.
    ///
    /// Returns the generation's [`Done`] record; the caller must finish by
    /// calling [`Rendezvous::finish_read`] exactly once.
    #[allow(clippy::too_many_arguments)]
    pub fn arrive<F>(
        &self,
        local: usize,
        op: &'static str,
        entry: VTime,
        bytes: u64,
        slot: Slot,
        compute_exit: F,
        poison: &Poison,
    ) -> (u64, Arc<Done>)
    where
        F: FnOnce(&RvView<'_>) -> VTime,
    {
        assert!(local < self.p, "mpisim: local rank {local} out of range");
        let mut st = self.state.lock();
        poison.check();
        match st.op {
            None => st.op = Some(op),
            Some(prev) => assert_eq!(
                prev, op,
                "mpisim: collective mismatch on communicator (ranks disagree: {prev} vs {op})"
            ),
        }
        let gen = st.gen;
        st.entries[local] = entry;
        assert!(
            st.slots[local].is_none() || slot.is_none(),
            "mpisim: duplicate arrival of local rank {local} in generation {gen}"
        );
        st.slots[local] = slot;
        st.total_bytes += bytes;
        st.arrived += 1;
        if st.arrived == self.p {
            // Last arriver: compute and publish, then open the next
            // generation for arrivals.
            let exit = {
                let view = RvView {
                    entries: &st.entries,
                    total_bytes: st.total_bytes,
                    gen,
                    p: self.p,
                };
                compute_exit(&view)
            };
            let slots = std::mem::replace(&mut st.slots, (0..self.p).map(|_| None).collect());
            let done = Arc::new(Done {
                exit,
                total_bytes: st.total_bytes,
                slots: Mutex::new(slots),
                remaining_readers: Mutex::new(self.p),
            });
            st.done.insert(gen, done.clone());
            st.gen += 1;
            st.arrived = 0;
            st.total_bytes = 0;
            st.op = None;
            st.entries.iter_mut().for_each(|e| *e = VTime::ZERO);
            #[cfg(target_arch = "x86_64")]
            if crate::des::with_active(|s| self.des_wake_members(s)).is_some() {
                return (gen, done);
            }
            self.cv.notify_all();
            (gen, done)
        } else {
            // Wait until this generation completes.
            loop {
                if let Some(done) = st.done.get(&gen) {
                    return (gen, done.clone());
                }
                poison.check();
                #[cfg(target_arch = "x86_64")]
                if crate::des::is_active() {
                    // Suspend this fiber; the last arriver (or the poison
                    // path) re-queues it. Release the state lock first —
                    // peers run on this same scheduler thread.
                    drop(st);
                    crate::des::with_active(|s| s.block_current());
                    st = self.state.lock();
                    continue;
                }
                self.cv.wait(&mut st);
            }
        }
    }

    /// Declare that the caller finished reading generation `gen`'s record.
    /// The last reader reclaims the record's storage.
    pub fn finish_read(&self, gen: u64, done: &Arc<Done>) {
        let last = {
            let mut remaining = done.remaining_readers.lock();
            debug_assert!(*remaining > 0, "finish_read called too many times");
            *remaining -= 1;
            *remaining == 0
        };
        if last {
            self.state.lock().done.remove(&gen);
        }
    }

    /// Wake all blocked participants (world poisoning).
    pub fn wake_all(&self) {
        #[cfg(target_arch = "x86_64")]
        if crate::des::with_active(|s| self.des_wake_members(s)).is_some() {
            return;
        }
        let _guard = self.state.lock();
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn run_barrier(p: usize, entries: Vec<u64>) -> Vec<VTime> {
        let rv = Arc::new(Rendezvous::new(p));
        let poison = Arc::new(Poison::default());
        let computed = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            let mut handles = Vec::new();
            for (local, entry) in entries.iter().copied().enumerate() {
                let rv = rv.clone();
                let poison = poison.clone();
                let computed = computed.clone();
                handles.push(s.spawn(move || {
                    let (gen, done) = rv.arrive(
                        local,
                        "barrier",
                        VTime::from_nanos(entry),
                        0,
                        None,
                        |view| {
                            computed.fetch_add(1, Ordering::SeqCst);
                            view.max_entry() + VTime::from_nanos(10)
                        },
                        &poison,
                    );
                    let exit = done.exit;
                    rv.finish_read(gen, &done);
                    exit
                }));
            }
            let times: Vec<VTime> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(computed.load(Ordering::SeqCst), 1, "exit computed once");
            times
        })
    }

    #[test]
    fn all_exit_at_max_plus_cost() {
        let times = run_barrier(4, vec![5, 80, 20, 3]);
        for t in &times {
            assert_eq!(*t, VTime::from_nanos(90));
        }
    }

    #[test]
    fn single_participant() {
        let times = run_barrier(1, vec![42]);
        assert_eq!(times, vec![VTime::from_nanos(52)]);
    }

    #[test]
    fn generations_progress() {
        let p = 3;
        let rv = Arc::new(Rendezvous::new(p));
        let poison = Arc::new(Poison::default());
        thread::scope(|s| {
            for local in 0..p {
                let rv = rv.clone();
                let poison = poison.clone();
                s.spawn(move || {
                    for round in 0..50u64 {
                        let (gen, done) = rv.arrive(
                            local,
                            "barrier",
                            VTime::from_nanos(round),
                            0,
                            None,
                            |view| view.max_entry() + VTime::from_nanos(1),
                            &poison,
                        );
                        assert_eq!(gen, round, "generations advance in lockstep");
                        assert_eq!(done.exit, VTime::from_nanos(round + 1));
                        rv.finish_read(gen, &done);
                    }
                });
            }
        });
        // All records reclaimed.
        assert!(rv.state.lock().done.is_empty());
    }

    #[test]
    fn slots_transport_data() {
        let p = 2;
        let rv = Arc::new(Rendezvous::new(p));
        let poison = Arc::new(Poison::default());
        let results: Vec<i32> = thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|local| {
                    let rv = rv.clone();
                    let poison = poison.clone();
                    s.spawn(move || {
                        let slot: Slot = Some(Box::new(vec![local as i32 * 10]));
                        let (gen, done) = rv.arrive(
                            local,
                            "gather",
                            VTime::ZERO,
                            4,
                            slot,
                            |view| {
                                assert_eq!(view.total_bytes, 8);
                                VTime::from_nanos(1)
                            },
                            &poison,
                        );
                        // Each rank reads the *other* rank's value.
                        let other = 1 - local;
                        let value = {
                            let slots = done.slots.lock();
                            let any = slots[other].as_ref().unwrap();
                            any.downcast_ref::<Vec<i32>>().unwrap()[0]
                        };
                        rv.finish_read(gen, &done);
                        value
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results, vec![10, 0]);
    }

    #[test]
    fn mismatched_ops_panic() {
        // Whichever rank arrives second observes the mismatch and panics;
        // it then poisons the rendezvous so the blocked first arriver
        // unwinds too (this is exactly what the world harness does).
        let rv = Arc::new(Rendezvous::new(2));
        let poison = Arc::new(Poison::default());
        let mut handles = Vec::new();
        for (local, op) in [(0usize, "barrier"), (1usize, "bcast")] {
            let rv = rv.clone();
            let poison = poison.clone();
            handles.push(thread::spawn(move || {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let (gen, done) =
                        rv.arrive(local, op, VTime::ZERO, 0, None, |v| v.max_entry(), &poison);
                    rv.finish_read(gen, &done);
                }));
                if r.is_err() {
                    poison.set();
                    rv.wake_all();
                }
                r.is_err()
            }));
        }
        let errs: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(errs.iter().any(|&e| e), "mismatch must be detected");
    }
}
