//! Cartesian process-grid helpers (the useful subset of `MPI_Cart_*`).
//!
//! The convolution benchmark uses a 1-D row decomposition; the LULESH proxy
//! uses a cubic 3-D decomposition. Both build on these rank/coordinate
//! mappings, which operate on *local* ranks of any communicator and do not
//! reorder ranks.

/// Balanced factorization of `n` ranks into `ndims` dimensions — the
/// behaviour of `MPI_Dims_create` with all dimensions free: the dims are as
/// close to each other as possible and sorted in decreasing order.
///
/// ```
/// assert_eq!(mpisim::dims_create(64, 3), vec![4, 4, 4]);
/// assert_eq!(mpisim::dims_create(12, 2), vec![4, 3]);
/// ```
pub fn dims_create(n: usize, ndims: usize) -> Vec<usize> {
    assert!(ndims >= 1, "dims_create needs at least one dimension");
    assert!(n >= 1, "dims_create needs at least one rank");
    let mut dims = vec![1usize; ndims];
    let mut remaining = n;
    // Peel prime factors largest-first onto the currently smallest dim.
    let mut factors = Vec::new();
    let mut f = 2;
    while f * f <= remaining {
        while remaining.is_multiple_of(f) {
            factors.push(f);
            remaining /= f;
        }
        f += 1;
    }
    if remaining > 1 {
        factors.push(remaining);
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for factor in factors {
        let smallest = dims
            .iter()
            .enumerate()
            .min_by_key(|(_, &d)| d)
            .map(|(i, _)| i)
            .expect("ndims >= 1");
        dims[smallest] *= factor;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

/// A cartesian grid over the local ranks `0..size` of a communicator, in
/// row-major rank order (last dimension varies fastest). Dimensions are
/// non-periodic by default; [`CartGrid::new_periodic`] builds tori.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CartGrid {
    dims: Vec<usize>,
    periodic: Vec<bool>,
}

impl CartGrid {
    /// Build a non-periodic grid; the product of `dims` must equal the
    /// intended size.
    pub fn new(dims: Vec<usize>) -> CartGrid {
        let periodic = vec![false; dims.len()];
        CartGrid::new_periodic(dims, periodic)
    }

    /// Build a grid with per-dimension periodicity (`MPI_Cart_create`'s
    /// `periods` argument): periodic dimensions wrap around.
    pub fn new_periodic(dims: Vec<usize>, periodic: Vec<bool>) -> CartGrid {
        assert!(!dims.is_empty(), "cartesian grid needs dimensions");
        assert!(dims.iter().all(|&d| d > 0), "zero-sized dimension");
        assert_eq!(dims.len(), periodic.len(), "periodicity arity mismatch");
        CartGrid { dims, periodic }
    }

    /// Per-dimension periodicity flags.
    pub fn periodic(&self) -> &[bool] {
        &self.periodic
    }

    /// A 1-D grid of `n` ranks.
    pub fn line(n: usize) -> CartGrid {
        CartGrid::new(vec![n])
    }

    /// A cubic 3-D grid; `n` must be a perfect cube.
    pub fn cube(n: usize) -> CartGrid {
        let side = (n as f64).cbrt().round() as usize;
        assert_eq!(
            side * side * side,
            n,
            "cube grid needs a perfect-cube rank count, got {n}"
        );
        CartGrid::new(vec![side, side, side])
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// The extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of ranks in the grid.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Coordinates of a local rank (row-major).
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.size(), "rank {rank} outside grid");
        let mut coords = vec![0; self.dims.len()];
        let mut rem = rank;
        for (i, &d) in self.dims.iter().enumerate().rev() {
            coords[i] = rem % d;
            rem /= d;
        }
        coords
    }

    /// Local rank at the given coordinates.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len(), "coordinate arity mismatch");
        let mut rank = 0;
        for (i, (&c, &d)) in coords.iter().zip(self.dims.iter()).enumerate() {
            assert!(c < d, "coordinate {c} out of range in dim {i}");
            rank = rank * d + c;
        }
        rank
    }

    /// Neighbour of `rank` displaced by `disp` along `dim`. Periodic
    /// dimensions wrap; non-periodic ones return `None` at the boundary
    /// (like `MPI_PROC_NULL`).
    pub fn neighbor(&self, rank: usize, dim: usize, disp: isize) -> Option<usize> {
        let mut coords = self.coords_of(rank);
        let d = self.dims[dim] as isize;
        let c = coords[dim] as isize + disp;
        let c = if self.periodic[dim] {
            c.rem_euclid(d)
        } else if c < 0 || c >= d {
            return None;
        } else {
            c
        };
        coords[dim] = c as usize;
        Some(self.rank_of(&coords))
    }

    /// All face neighbours (±1 along each dimension), `MPI_PROC_NULL`
    /// entries omitted.
    pub fn face_neighbors(&self, rank: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(2 * self.dims.len());
        for dim in 0..self.dims.len() {
            for disp in [-1isize, 1] {
                if let Some(n) = self.neighbor(rank, dim, disp) {
                    out.push(n);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_create_balanced() {
        assert_eq!(dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(dims_create(12, 2), vec![4, 3]);
        assert_eq!(dims_create(7, 2), vec![7, 1]);
        assert_eq!(dims_create(64, 3), vec![4, 4, 4]);
        assert_eq!(dims_create(1, 3), vec![1, 1, 1]);
        assert_eq!(dims_create(456, 1), vec![456]);
    }

    #[test]
    fn dims_create_preserves_product() {
        for n in 1..=100 {
            for ndims in 1..=4 {
                let dims = dims_create(n, ndims);
                assert_eq!(dims.iter().product::<usize>(), n, "n={n} ndims={ndims}");
            }
        }
    }

    #[test]
    fn coords_roundtrip() {
        let g = CartGrid::new(vec![3, 4, 5]);
        assert_eq!(g.size(), 60);
        for rank in 0..60 {
            assert_eq!(g.rank_of(&g.coords_of(rank)), rank);
        }
        assert_eq!(g.coords_of(0), vec![0, 0, 0]);
        assert_eq!(g.coords_of(59), vec![2, 3, 4]);
        // Row-major: last dim fastest.
        assert_eq!(g.coords_of(1), vec![0, 0, 1]);
    }

    #[test]
    fn line_neighbors() {
        let g = CartGrid::line(4);
        assert_eq!(g.neighbor(0, 0, -1), None);
        assert_eq!(g.neighbor(0, 0, 1), Some(1));
        assert_eq!(g.neighbor(3, 0, 1), None);
        assert_eq!(g.neighbor(2, 0, -1), Some(1));
    }

    #[test]
    fn cube_construction() {
        let g = CartGrid::cube(27);
        assert_eq!(g.dims(), &[3, 3, 3]);
        // Center rank has 6 face neighbours, corner has 3.
        let center = g.rank_of(&[1, 1, 1]);
        assert_eq!(g.face_neighbors(center).len(), 6);
        assert_eq!(g.face_neighbors(0).len(), 3);
    }

    #[test]
    #[should_panic(expected = "perfect-cube")]
    fn cube_rejects_noncube() {
        let _ = CartGrid::cube(10);
    }

    #[test]
    fn periodic_dimensions_wrap() {
        let g = CartGrid::new_periodic(vec![4], vec![true]);
        assert_eq!(g.neighbor(0, 0, -1), Some(3));
        assert_eq!(g.neighbor(3, 0, 1), Some(0));
        assert_eq!(g.neighbor(1, 0, 6), Some(3)); // wraps past the end
        assert_eq!(g.neighbor(0, 0, -9), Some(3));
        // A ring's every rank has exactly 2 distinct face neighbours.
        for r in 0..4 {
            assert_eq!(g.face_neighbors(r).len(), 2);
        }
    }

    #[test]
    fn mixed_periodicity() {
        // A cylinder: periodic in dim 1 only.
        let g = CartGrid::new_periodic(vec![3, 4], vec![false, true]);
        assert_eq!(g.neighbor(0, 0, -1), None);
        let wrapped = g.neighbor(0, 1, -1).unwrap();
        assert_eq!(g.coords_of(wrapped), vec![0, 3]);
        assert_eq!(g.periodic(), &[false, true]);
    }

    #[test]
    #[should_panic(expected = "periodicity arity mismatch")]
    fn periodicity_arity_checked() {
        let _ = CartGrid::new_periodic(vec![2, 2], vec![true]);
    }

    #[test]
    fn displacement_beyond_one() {
        let g = CartGrid::line(10);
        assert_eq!(g.neighbor(5, 0, 3), Some(8));
        assert_eq!(g.neighbor(5, 0, -6), None);
    }
}
