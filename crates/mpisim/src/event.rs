//! Tool-visible runtime events — the simulator's PMPI layer.
//!
//! Real MPI tools interpose on the profiling interface (PMPI): every MPI
//! function has a `PMPI_` twin and a tool redefines the public symbol to
//! observe the call. Our in-process equivalent raises a typed [`MpiEvent`]
//! at the entry and exit of every communication call, at Init/Finalize, and
//! for the `MPIX_Section_enter/leave` notifications of the paper (Fig. 2),
//! including their 32-byte tool data blob.

use crate::message::{Src, TagSel};
use machine::VTime;
use std::sync::Arc;

/// Identifies a communicator within one world. The world communicator is
/// always id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommId(pub u64);

impl CommId {
    /// The world communicator.
    pub const WORLD: CommId = CommId(0);
}

/// Which MPI-level operation an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MpiCall {
    Send,
    Recv,
    Sendrecv,
    Isend,
    Irecv,
    Wait,
    Barrier,
    Bcast,
    Scatter,
    Scatterv,
    Gather,
    Gatherv,
    Allgather,
    Reduce,
    Allreduce,
    Alltoall,
    Scan,
    CommDup,
    CommSplit,
}

impl MpiCall {
    /// Human-readable MPI-style name.
    pub fn name(&self) -> &'static str {
        match self {
            MpiCall::Send => "MPI_Send",
            MpiCall::Recv => "MPI_Recv",
            MpiCall::Sendrecv => "MPI_Sendrecv",
            MpiCall::Isend => "MPI_Isend",
            MpiCall::Irecv => "MPI_Irecv",
            MpiCall::Wait => "MPI_Wait",
            MpiCall::Barrier => "MPI_Barrier",
            MpiCall::Bcast => "MPI_Bcast",
            MpiCall::Scatter => "MPI_Scatter",
            MpiCall::Scatterv => "MPI_Scatterv",
            MpiCall::Gather => "MPI_Gather",
            MpiCall::Gatherv => "MPI_Gatherv",
            MpiCall::Allgather => "MPI_Allgather",
            MpiCall::Reduce => "MPI_Reduce",
            MpiCall::Allreduce => "MPI_Allreduce",
            MpiCall::Alltoall => "MPI_Alltoall",
            MpiCall::Scan => "MPI_Scan",
            MpiCall::CommDup => "MPI_Comm_dup",
            MpiCall::CommSplit => "MPI_Comm_split",
        }
    }

    /// True for operations that involve every rank of the communicator.
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            MpiCall::Barrier
                | MpiCall::Bcast
                | MpiCall::Scatter
                | MpiCall::Scatterv
                | MpiCall::Gather
                | MpiCall::Gatherv
                | MpiCall::Allgather
                | MpiCall::Reduce
                | MpiCall::Allreduce
                | MpiCall::Alltoall
                | MpiCall::Scan
                | MpiCall::CommDup
                | MpiCall::CommSplit
        )
    }
}

/// The 32-byte opaque tool-data argument of the section callback interface
/// (Fig. 2 of the paper), preserved by the runtime between enter and leave.
pub type SectionData = [u8; 32];

/// One PMPI-level event, delivered to every registered [`crate::Tool`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MpiEvent {
    /// The rank entered the runtime (start of the SPMD function).
    Init {
        /// World size.
        size: usize,
        /// Virtual time on this rank (always zero today).
        time: VTime,
    },
    /// The rank is about to leave the runtime.
    Finalize { time: VTime },
    /// An MPI call is starting on this rank.
    CallEnter {
        call: MpiCall,
        comm: CommId,
        time: VTime,
    },
    /// An MPI call finished on this rank.
    CallExit {
        call: MpiCall,
        comm: CommId,
        time: VTime,
        /// Logical payload bytes this rank sent plus received in the call.
        bytes: u64,
    },
    /// `MPIX_Section_enter` notification (the paper's enter callback).
    SectionEnter {
        comm: CommId,
        /// Size of the communicator the section is collective over.
        comm_size: usize,
        /// Rank local to that communicator.
        comm_rank: usize,
        label: Arc<str>,
        data: SectionData,
        time: VTime,
    },
    /// `MPIX_Section_leave` notification (the paper's leave callback).
    SectionLeave {
        comm: CommId,
        comm_size: usize,
        comm_rank: usize,
        label: Arc<str>,
        data: SectionData,
        time: VTime,
    },
    /// `MPI_Pcontrol(level)` — the standard's tool-control hook, whose
    /// semantics are tool-defined (the IPM phase-outlining mechanism the
    /// paper compares against in §6).
    Pcontrol { level: i32, time: VTime },
    /// An eager send deposited a message into the destination's mailbox.
    /// Raised on the *sender's* thread, before the deposit becomes visible
    /// to the receiver, so an analyzer's in-flight set is always a superset
    /// of the mailboxes' actual content.
    SendEnqueued {
        comm: CommId,
        /// Destination rank, local to `comm`.
        dst_local: usize,
        /// Destination world rank.
        dst_world: usize,
        tag: i32,
        /// Global message sequence number; pairs with
        /// [`MpiEvent::RecvMatched::seq`].
        seq: u64,
        /// Logical payload size of the message.
        bytes: u64,
        time: VTime,
    },
    /// A blocking receive is about to wait for a matching message. Raised
    /// before the rank can block; the matching [`MpiEvent::RecvMatched`]
    /// follows once a message is consumed.
    RecvBlocked {
        comm: CommId,
        src: Src,
        tag: TagSel,
        /// World ranks of `comm`'s members, indexed by local rank (the
        /// potential senders an analyzer must consider for `Src::Any`).
        members: Arc<Vec<usize>>,
        time: VTime,
    },
    /// A blocking receive matched and consumed a message.
    RecvMatched {
        comm: CommId,
        /// Sender rank, local to `comm`.
        src_local: usize,
        /// Sender world rank.
        src_world: usize,
        tag: i32,
        /// Sequence number of the consumed message.
        seq: u64,
        /// Logical payload size of the consumed message.
        bytes: u64,
        /// Every in-flight message that matched the receive selectors at
        /// the instant of consumption, as `(sender world rank, tag)`. More
        /// than one distinct sender under `Src::Any` is a message race.
        candidates: Vec<(usize, i32)>,
        time: VTime,
    },
    /// The rank arrived at a collective rendezvous and may block until the
    /// other members arrive.
    CollectiveEnter {
        /// Rendezvous operation label (e.g. `"barrier"`, `"bcast"`,
        /// `"split.exchange"`).
        op: &'static str,
        comm: CommId,
        /// World ranks of `comm`'s members, indexed by local rank.
        members: Arc<Vec<usize>>,
        /// Root rank (local to `comm`) for rooted collectives.
        root: Option<usize>,
        time: VTime,
    },
    /// The rank left the collective rendezvous (all members arrived).
    CollectiveExit {
        op: &'static str,
        comm: CommId,
        /// Total logical payload bytes of the operation, summed over
        /// members (what the cost model was charged with).
        bytes: u64,
        time: VTime,
    },
    /// The rank advanced its local clock by modeled compute (or any other
    /// local work priced through the machine model). `time` is the clock
    /// *before* the advance; `elapsed` includes performance jitter while
    /// `base` is the jitter-free duration — a replay tool subtracts the
    /// two to null out noise without re-pricing the kernel.
    Compute {
        /// Jitter-free duration of the work.
        base: VTime,
        /// Actually-charged duration (base scaled by the noise draw).
        elapsed: VTime,
        time: VTime,
    },
}

/// Discriminant of an [`MpiEvent`], used for interest masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
#[repr(u32)]
pub enum EventKind {
    Init = 0,
    Finalize = 1,
    CallEnter = 2,
    CallExit = 3,
    SectionEnter = 4,
    SectionLeave = 5,
    Pcontrol = 6,
    SendEnqueued = 7,
    RecvBlocked = 8,
    RecvMatched = 9,
    CollectiveEnter = 10,
    CollectiveExit = 11,
    Compute = 12,
}

/// A set of [`EventKind`]s a tool wants delivered (see
/// [`crate::Tool::interests`]). The runtime unions the masks of all
/// attached tools and skips *constructing* events nobody asked for — the
/// difference between ~600 ns and ~1.5 µs per rank-step at 16k ranks,
/// because the analyzer-grade events clone members lists and candidate
/// vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventMask(u32);

impl EventMask {
    /// The empty mask: no events delivered.
    pub const NONE: EventMask = EventMask(0);
    /// Every current and future event kind.
    pub const ALL: EventMask = EventMask(u32::MAX);
    /// Just the run lifecycle events (`Init`/`Finalize`).
    pub const LIFECYCLE: EventMask =
        EventMask((1 << EventKind::Init as u32) | (1 << EventKind::Finalize as u32));

    /// A mask of exactly `kind`.
    pub const fn only(kind: EventKind) -> EventMask {
        EventMask(1 << kind as u32)
    }

    /// Build a mask from a list of kinds.
    pub fn of(kinds: &[EventKind]) -> EventMask {
        let mut mask = 0;
        for &k in kinds {
            mask |= 1 << k as u32;
        }
        EventMask(mask)
    }

    /// Union of two masks.
    pub const fn union(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }

    /// Add `kind` to the mask.
    pub const fn with(self, kind: EventKind) -> EventMask {
        EventMask(self.0 | (1 << kind as u32))
    }

    /// Does the mask contain `kind`?
    #[inline]
    pub const fn contains(self, kind: EventKind) -> bool {
        self.0 & (1 << kind as u32) != 0
    }

    /// Is the mask empty?
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl MpiEvent {
    /// The discriminant of the event.
    pub fn kind(&self) -> EventKind {
        match self {
            MpiEvent::Init { .. } => EventKind::Init,
            MpiEvent::Finalize { .. } => EventKind::Finalize,
            MpiEvent::CallEnter { .. } => EventKind::CallEnter,
            MpiEvent::CallExit { .. } => EventKind::CallExit,
            MpiEvent::SectionEnter { .. } => EventKind::SectionEnter,
            MpiEvent::SectionLeave { .. } => EventKind::SectionLeave,
            MpiEvent::Pcontrol { .. } => EventKind::Pcontrol,
            MpiEvent::SendEnqueued { .. } => EventKind::SendEnqueued,
            MpiEvent::RecvBlocked { .. } => EventKind::RecvBlocked,
            MpiEvent::RecvMatched { .. } => EventKind::RecvMatched,
            MpiEvent::CollectiveEnter { .. } => EventKind::CollectiveEnter,
            MpiEvent::CollectiveExit { .. } => EventKind::CollectiveExit,
            MpiEvent::Compute { .. } => EventKind::Compute,
        }
    }

    /// The virtual timestamp carried by the event.
    pub fn time(&self) -> VTime {
        match self {
            MpiEvent::Init { time, .. }
            | MpiEvent::Finalize { time }
            | MpiEvent::CallEnter { time, .. }
            | MpiEvent::CallExit { time, .. }
            | MpiEvent::SectionEnter { time, .. }
            | MpiEvent::SectionLeave { time, .. }
            | MpiEvent::Pcontrol { time, .. }
            | MpiEvent::SendEnqueued { time, .. }
            | MpiEvent::RecvBlocked { time, .. }
            | MpiEvent::RecvMatched { time, .. }
            | MpiEvent::CollectiveEnter { time, .. }
            | MpiEvent::CollectiveExit { time, .. }
            | MpiEvent::Compute { time, .. } => *time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_names() {
        assert_eq!(MpiCall::Send.name(), "MPI_Send");
        assert_eq!(MpiCall::Allreduce.name(), "MPI_Allreduce");
    }

    #[test]
    fn collective_classification() {
        assert!(MpiCall::Barrier.is_collective());
        assert!(MpiCall::CommSplit.is_collective());
        assert!(!MpiCall::Send.is_collective());
        assert!(!MpiCall::Irecv.is_collective());
    }

    #[test]
    fn event_time_accessor() {
        let e = MpiEvent::Init {
            size: 4,
            time: VTime::from_nanos(7),
        };
        assert_eq!(e.time(), VTime::from_nanos(7));
        let e = MpiEvent::SectionEnter {
            comm: CommId::WORLD,
            comm_size: 4,
            comm_rank: 0,
            label: Arc::from("HALO"),
            data: [0; 32],
            time: VTime::from_nanos(9),
        };
        assert_eq!(e.time(), VTime::from_nanos(9));
    }

    #[test]
    fn event_masks_gate_by_kind() {
        let mask = EventMask::of(&[EventKind::Init, EventKind::RecvMatched]);
        assert!(mask.contains(EventKind::Init));
        assert!(mask.contains(EventKind::RecvMatched));
        assert!(!mask.contains(EventKind::SendEnqueued));
        assert!(EventMask::ALL.contains(EventKind::Pcontrol));
        assert!(EventMask::NONE.is_empty());
        assert!(EventMask::LIFECYCLE.contains(EventKind::Finalize));
        assert!(!EventMask::LIFECYCLE.contains(EventKind::CallEnter));
        let grown = EventMask::only(EventKind::Init).with(EventKind::Finalize);
        assert_eq!(grown, EventMask::LIFECYCLE);
        let e = MpiEvent::Finalize {
            time: VTime::from_nanos(1),
        };
        assert_eq!(e.kind(), EventKind::Finalize);
    }

    #[test]
    fn analyzer_event_times() {
        let members = Arc::new(vec![0usize, 1]);
        let e = MpiEvent::RecvBlocked {
            comm: CommId::WORLD,
            src: Src::Any,
            tag: TagSel::Any,
            members: members.clone(),
            time: VTime::from_nanos(3),
        };
        assert_eq!(e.time(), VTime::from_nanos(3));
        let e = MpiEvent::CollectiveEnter {
            op: "barrier",
            comm: CommId::WORLD,
            members,
            root: None,
            time: VTime::from_nanos(5),
        };
        assert_eq!(e.time(), VTime::from_nanos(5));
    }
}
