//! The per-rank execution context.
//!
//! A [`Proc`] is handed to the SPMD function of every rank. It owns the
//! rank's virtual clock, its deterministic noise streams, and the handles
//! into the shared world (mailboxes, communicator registry, tools). All
//! simulated cost flows through this type: computation via [`Proc::compute`],
//! communication via the operations on [`crate::Comm`].

use crate::comm::{Comm, CommShared, Registry};
use crate::event::{CommId, EventKind, MpiCall, MpiEvent};
use crate::mailbox::MailboxSet;
use crate::tool::ToolSet;
use machine::{DetRng, MachineModel, VTime, Work};
use std::sync::Arc;

/// Distinguishes the purpose of each deterministic random stream so the
/// consumption order in one stream never depends on another.
pub(crate) mod streams {
    pub const COMPUTE: u64 = 0;
    pub const NETWORK: u64 = 1;
    pub const APP: u64 = 2;
}

/// Per-rank execution context (the simulated "MPI process").
pub struct Proc {
    pub(crate) world_rank: usize,
    pub(crate) nranks: usize,
    pub(crate) now: VTime,
    pub(crate) machine: Arc<MachineModel>,
    pub(crate) compute_rng: DetRng,
    pub(crate) net_rng: DetRng,
    pub(crate) app_rng: DetRng,
    pub(crate) tools: ToolSet,
    pub(crate) mailboxes: Arc<MailboxSet>,
    pub(crate) registry: Arc<Registry>,
    /// Count of messages this rank has sent; the low bits of its message
    /// sequence numbers (see [`Proc::next_seq`]).
    pub(crate) sent: u64,
    pub(crate) seed: u64,
    pub(crate) ranks_on_my_node: usize,
    pub(crate) world_shared: Arc<CommShared>,
}

impl Proc {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        world_rank: usize,
        nranks: usize,
        machine: Arc<MachineModel>,
        tools: ToolSet,
        mailboxes: Arc<MailboxSet>,
        registry: Arc<Registry>,
        seed: u64,
        world_shared: Arc<CommShared>,
    ) -> Self {
        let topo = machine.topology;
        let node = topo.node_of(world_rank);
        let ranks_on_my_node = (0..nranks).filter(|&r| topo.node_of(r) == node).count();
        Proc {
            world_rank,
            nranks,
            now: VTime::ZERO,
            compute_rng: DetRng::for_stream(seed, world_rank as u64, streams::COMPUTE),
            net_rng: DetRng::for_stream(seed, world_rank as u64, streams::NETWORK),
            app_rng: DetRng::for_stream(seed, world_rank as u64, streams::APP),
            machine,
            tools,
            mailboxes,
            registry,
            sent: 0,
            seed,
            ranks_on_my_node,
            world_shared,
        }
    }

    /// This rank's index in the world communicator.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.nranks
    }

    /// The world communicator.
    pub fn world(&self) -> Comm {
        Comm::from_shared(self.world_shared.clone(), self.world_rank)
    }

    /// Current virtual time on this rank.
    #[inline]
    pub fn now(&self) -> VTime {
        self.now
    }

    /// The machine model the world runs on.
    #[inline]
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// The world's base random seed (tools and apps derive their own
    /// streams from it).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of world ranks placed on this rank's node.
    #[inline]
    pub fn ranks_on_node(&self) -> usize {
        self.ranks_on_my_node
    }

    /// Advance the local clock by an exact amount (no noise).
    #[inline]
    pub fn advance(&mut self, dt: VTime) {
        self.now += dt;
    }

    /// Advance the local clock by fractional seconds (no noise).
    #[inline]
    pub fn advance_secs(&mut self, secs: f64) {
        self.now += VTime::from_secs_f64(secs);
    }

    /// Charge a chunk of computation to this rank: the machine model prices
    /// it (with memory contention from the other ranks on this node) and
    /// the noise model jitters it. This is the single-threaded path; hybrid
    /// codes price their threaded regions through the `shmem` crate.
    pub fn compute(&mut self, work: Work) {
        let secs = self.machine.thread_seconds_for(work, self.ranks_on_my_node);
        let factor = self.machine.noise.compute_factor(&mut self.compute_rng);
        self.advance_jittered(secs, secs * factor);
    }

    /// Like [`Proc::compute`] but without jitter (calibration paths).
    pub fn compute_noiseless(&mut self, work: Work) {
        let secs = self.machine.thread_seconds_for(work, self.ranks_on_my_node);
        self.now += VTime::from_secs_f64(secs);
    }

    /// Advance the clock by jittered local work, telling tools both the
    /// jitter-free baseline and the actually-charged duration (an
    /// [`MpiEvent::Compute`] event). Every noise-bearing local advance in
    /// the runtime and the layered shared-memory runtime routes through
    /// here so a replay tool can null compute jitter out of a trace.
    pub fn advance_jittered(&mut self, base_secs: f64, actual_secs: f64) {
        let base = VTime::from_secs_f64(base_secs);
        let elapsed = VTime::from_secs_f64(actual_secs);
        if self.wants(EventKind::Compute) {
            self.raise(MpiEvent::Compute {
                base,
                elapsed,
                time: self.now,
            });
        }
        self.now += elapsed;
    }

    /// Price `work` under an explicit contention level without advancing
    /// the clock (building block for the shared-memory layer).
    pub fn price_contended(&self, work: Work, active_threads: usize) -> f64 {
        self.machine.thread_seconds_for(work, active_threads)
    }

    /// Draw one compute-jitter factor (median 1) from this rank's stream.
    pub fn jitter_factor(&mut self) -> f64 {
        self.machine.noise.compute_factor(&mut self.compute_rng)
    }

    /// Application-level deterministic random stream (never consumed by the
    /// runtime itself).
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.app_rng
    }

    /// Raise a PMPI-level event to all registered tools.
    #[inline]
    pub fn raise(&self, event: MpiEvent) {
        if !self.tools.is_empty() {
            self.tools.raise(self.world_rank, &event);
        }
    }

    /// Does any attached tool subscribe to events of `kind`? Hot paths
    /// (inside the runtime and in layered runtimes like `mpi-sections`)
    /// check this before building an event at all.
    #[inline]
    pub fn wants(&self, kind: EventKind) -> bool {
        self.tools.wants(kind)
    }

    /// Next message sequence number: the sender's world rank in the high
    /// bits over a per-rank send counter. Globally unique and — unlike a
    /// shared atomic counter — independent of how ranks interleave, so
    /// trace flow ids and analyzer join keys are identical across both
    /// execution engines and across reruns.
    #[inline]
    pub(crate) fn next_seq(&mut self) -> u64 {
        let n = self.sent;
        self.sent += 1;
        ((self.world_rank as u64) << 40) | n
    }

    /// `MPI_Pcontrol(level)`: a pure tool notification with tool-defined
    /// semantics (§6 related work: how IPM outlines phases). Costs nothing
    /// and does nothing unless a tool interprets it.
    pub fn pcontrol(&self, level: i32) {
        self.raise(MpiEvent::Pcontrol {
            level,
            time: self.now,
        });
    }

    #[inline]
    pub(crate) fn tool_call_enter(&self, call: MpiCall, comm: CommId) {
        if self.wants(EventKind::CallEnter) {
            self.tools.raise(
                self.world_rank,
                &MpiEvent::CallEnter {
                    call,
                    comm,
                    time: self.now,
                },
            );
        }
    }

    #[inline]
    pub(crate) fn tool_call_exit(&self, call: MpiCall, comm: CommId, bytes: u64) {
        if self.wants(EventKind::CallExit) {
            self.tools.raise(
                self.world_rank,
                &MpiEvent::CallExit {
                    call,
                    comm,
                    time: self.now,
                    bytes,
                },
            );
        }
    }
}

impl std::fmt::Debug for Proc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proc")
            .field("world_rank", &self.world_rank)
            .field("nranks", &self.nranks)
            .field("now", &self.now)
            .finish()
    }
}
