//! # mpisim — a virtual-time, in-process MPI-like runtime
//!
//! This crate is the substrate that replaces a real MPI library in the
//! reproduction of *"Towards a Better Expressiveness of the Speedup Metric
//! in MPI Context"* (ICPPW 2017). It provides, in-process:
//!
//! * an SPMD launcher ([`WorldBuilder`]) with two execution engines: the
//!   portable `threads` engine (one OS thread per rank) and the default
//!   discrete-event `des` engine, which drives every rank as a cooperative
//!   fiber from a single-threaded virtual-time event queue and scales past
//!   16 000 ranks on a laptop (select with [`WorldBuilder::engine`] or the
//!   `MPISIM_ENGINE` environment variable);
//! * communicators ([`Comm`]) with `dup`/`split`, point-to-point messaging
//!   (blocking, non-blocking, combined sendrecv, virtual/timing-mode
//!   payloads) and the usual collectives (barrier, bcast, scatter(v),
//!   gather(v), allgather, reduce, allreduce, alltoall, scan);
//! * **virtual time**: each rank owns a clock; computation is priced by a
//!   [`machine::MachineModel`], messages piggyback their departure
//!   timestamps, and collectives synchronize clocks — so a 456-rank cluster
//!   job "runs" on a laptop with reproducible, causally propagated waiting
//!   time;
//! * a **PMPI-style tool layer** ([`Tool`]): every call raises typed enter
//!   and exit events, which is the interposition point the paper's
//!   `MPI_Section` reference implementation hooks into (the `mpi-sections`
//!   crate builds on it).
//!
//! ## Example
//!
//! ```
//! use mpisim::{WorldBuilder, Src, TagSel};
//!
//! let report = WorldBuilder::new(2)
//!     .run(|p| {
//!         let world = p.world();
//!         if p.world_rank() == 0 {
//!             world.send(p, 1, 0, &[1u32, 2, 3]);
//!             0
//!         } else {
//!             let msg = world.recv::<u32>(p, Src::Rank(0), TagSel::Is(0));
//!             msg.data.iter().sum::<u32>()
//!         }
//!     })
//!     .unwrap();
//! assert_eq!(report.results, vec![0, 6]);
//! ```

pub mod cart;
pub mod collective;
pub mod comm;
pub mod control;
#[cfg(target_arch = "x86_64")]
pub(crate) mod des;
pub mod diag;
pub mod error;
pub mod event;
#[cfg(target_arch = "x86_64")]
pub(crate) mod fiber;
pub mod jsoncheck;
pub mod mailbox;
pub mod message;
pub mod proc;
pub mod tool;
pub mod topo;
pub mod world;

pub use cart::CartComm;
pub use comm::{waitall, Comm, RecvReq, Recvd, SendReq};
pub use control::{MatchCandidate, MatchController};
pub use diag::{BlockedSite, Diagnostic, DiagnosticKind, Severity};
pub use error::RunError;
pub use event::{CommId, EventKind, EventMask, MpiCall, MpiEvent, SectionData};
pub use message::{Payload, Src, TagSel};
pub use proc::Proc;
pub use tool::{Tool, ToolSet};
pub use topo::{dims_create, CartGrid};
pub use world::{Engine, RunReport, WorldBuilder};
