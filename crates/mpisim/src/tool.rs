//! The tool (PMPI interposition) interface.
//!
//! A [`Tool`] observes every [`MpiEvent`] raised by every rank. Tools are
//! registered on the world before launch and shared across rank threads, so
//! implementations must be `Send + Sync` and are expected to keep per-rank
//! state sharded (e.g. a `Mutex<Vec<_>>` indexed by rank) to stay
//! non-intrusive — exactly the constraint a real PMPI tool faces.

use crate::event::MpiEvent;
use std::sync::Arc;

/// A performance/debugging tool observing runtime events.
pub trait Tool: Send + Sync {
    /// Called synchronously on the acting rank's thread for every event.
    fn on_event(&self, world_rank: usize, event: &MpiEvent);

    /// Called once after the run completes (all ranks joined), with the
    /// number of ranks. Default: no-op.
    fn on_run_complete(&self, _nranks: usize) {}

    /// A short description of this tool's per-rank context — e.g. the
    /// rank's open-section stack — appended to
    /// [`RunError::RankPanicked`](crate::RunError::RankPanicked) messages
    /// when that rank fails. Default: no context.
    fn rank_context(&self, _world_rank: usize) -> Option<String> {
        None
    }
}

/// The ordered set of tools attached to a world.
#[derive(Clone, Default)]
pub struct ToolSet {
    tools: Arc<Vec<Arc<dyn Tool>>>,
}

impl ToolSet {
    /// An empty tool set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a list of tools.
    pub fn from_tools(tools: Vec<Arc<dyn Tool>>) -> Self {
        ToolSet {
            tools: Arc::new(tools),
        }
    }

    /// True when no tool is registered (event raising short-circuits).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }

    /// Deliver an event to every tool, in registration order.
    #[inline]
    pub fn raise(&self, world_rank: usize, event: &MpiEvent) {
        for tool in self.tools.iter() {
            tool.on_event(world_rank, event);
        }
    }

    /// Deliver the end-of-run notification.
    pub fn complete(&self, nranks: usize) {
        for tool in self.tools.iter() {
            tool.on_run_complete(nranks);
        }
    }

    /// Collect every tool's context for a failing rank, in registration
    /// order (used to enrich `RankPanicked` messages).
    pub fn rank_context(&self, world_rank: usize) -> Vec<String> {
        self.tools
            .iter()
            .filter_map(|t| t.rank_context(world_rank))
            .collect()
    }
}

impl std::fmt::Debug for ToolSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ToolSet({} tools)", self.tools.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::VTime;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counter(AtomicUsize);
    impl Tool for Counter {
        fn on_event(&self, _rank: usize, _event: &MpiEvent) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn raise_reaches_all_tools() {
        let a = Arc::new(Counter(AtomicUsize::new(0)));
        let b = Arc::new(Counter(AtomicUsize::new(0)));
        let set = ToolSet::from_tools(vec![a.clone(), b.clone()]);
        assert!(!set.is_empty());
        let ev = MpiEvent::Init {
            size: 1,
            time: VTime::ZERO,
        };
        set.raise(0, &ev);
        set.raise(0, &ev);
        assert_eq!(a.0.load(Ordering::Relaxed), 2);
        assert_eq!(b.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_set() {
        let set = ToolSet::new();
        assert!(set.is_empty());
        set.raise(0, &MpiEvent::Finalize { time: VTime::ZERO });
        set.complete(4);
    }
}
