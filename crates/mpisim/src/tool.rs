//! The tool (PMPI interposition) interface.
//!
//! A [`Tool`] observes every [`MpiEvent`] raised by every rank. Tools are
//! registered on the world before launch and shared by every rank — under
//! the threads engine concurrently across rank threads, under the DES
//! engine from the one scheduler thread — so implementations must be
//! `Send + Sync` and are expected to keep per-rank state sharded (e.g. a
//! `Mutex<Vec<_>>` indexed by rank) to stay non-intrusive — exactly the
//! constraint a real PMPI tool faces.
//!
//! Tools additionally declare an *interest mask* ([`Tool::interests`]):
//! the runtime unions the masks of all attached tools and skips building
//! events no tool subscribed to, which keeps a lightly-instrumented
//! 16k-rank run close to uninstrumented speed.

use crate::event::{EventKind, EventMask, MpiEvent};
use std::sync::Arc;

/// A performance/debugging tool observing runtime events.
pub trait Tool: Send + Sync {
    /// Called synchronously on the acting rank for every event whose kind
    /// is in [`Tool::interests`].
    fn on_event(&self, world_rank: usize, event: &MpiEvent);

    /// The event kinds this tool wants delivered. Defaults to every kind;
    /// override to let the runtime skip constructing unneeded events
    /// (the analyzer-grade ones clone member lists and candidate sets).
    /// The mask is sampled once at launch; it must be constant.
    fn interests(&self) -> EventMask {
        EventMask::ALL
    }

    /// Called once after the run completes (all ranks joined), with the
    /// number of ranks. Default: no-op.
    fn on_run_complete(&self, _nranks: usize) {}

    /// A short description of this tool's per-rank context — e.g. the
    /// rank's open-section stack — appended to
    /// [`RunError::RankPanicked`](crate::RunError::RankPanicked) messages
    /// when that rank fails. Default: no context.
    fn rank_context(&self, _world_rank: usize) -> Option<String> {
        None
    }
}

/// The ordered set of tools attached to a world. Each tool's interest
/// mask is sampled once at construction and cached next to it, so
/// per-event filtering costs a bit test, not a virtual call.
#[derive(Clone)]
pub struct ToolSet {
    tools: Arc<Vec<(EventMask, Arc<dyn Tool>)>>,
    /// Union of every attached tool's interest mask.
    mask: EventMask,
}

impl Default for ToolSet {
    fn default() -> Self {
        ToolSet {
            tools: Arc::new(Vec::new()),
            mask: EventMask::NONE,
        }
    }
}

impl ToolSet {
    /// An empty tool set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a list of tools.
    pub fn from_tools(tools: Vec<Arc<dyn Tool>>) -> Self {
        let tools: Vec<(EventMask, Arc<dyn Tool>)> =
            tools.into_iter().map(|t| (t.interests(), t)).collect();
        let mask = tools
            .iter()
            .fold(EventMask::NONE, |m, (tm, _)| m.union(*tm));
        ToolSet {
            tools: Arc::new(tools),
            mask,
        }
    }

    /// True when no tool is registered (event raising short-circuits).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }

    /// Does any attached tool want events of `kind`? Callers use this to
    /// skip constructing the event entirely.
    #[inline]
    pub fn wants(&self, kind: EventKind) -> bool {
        self.mask.contains(kind)
    }

    /// Deliver an event to every subscribed tool, in registration order.
    #[inline]
    pub fn raise(&self, world_rank: usize, event: &MpiEvent) {
        let kind = event.kind();
        if !self.mask.contains(kind) {
            return;
        }
        for (tool_mask, tool) in self.tools.iter() {
            if tool_mask.contains(kind) {
                tool.on_event(world_rank, event);
            }
        }
    }

    /// Deliver the end-of-run notification.
    pub fn complete(&self, nranks: usize) {
        for (_, tool) in self.tools.iter() {
            tool.on_run_complete(nranks);
        }
    }

    /// Collect every tool's context for a failing rank, in registration
    /// order (used to enrich `RankPanicked` messages).
    pub fn rank_context(&self, world_rank: usize) -> Vec<String> {
        self.tools
            .iter()
            .filter_map(|(_, t)| t.rank_context(world_rank))
            .collect()
    }
}

impl std::fmt::Debug for ToolSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ToolSet({} tools)", self.tools.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::VTime;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counter(AtomicUsize);
    impl Tool for Counter {
        fn on_event(&self, _rank: usize, _event: &MpiEvent) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A tool subscribed to lifecycle events only.
    struct LifecycleOnly(AtomicUsize);
    impl Tool for LifecycleOnly {
        fn on_event(&self, _rank: usize, _event: &MpiEvent) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
        fn interests(&self) -> EventMask {
            EventMask::LIFECYCLE
        }
    }

    #[test]
    fn raise_reaches_all_tools() {
        let a = Arc::new(Counter(AtomicUsize::new(0)));
        let b = Arc::new(Counter(AtomicUsize::new(0)));
        let set = ToolSet::from_tools(vec![a.clone(), b.clone()]);
        assert!(!set.is_empty());
        let ev = MpiEvent::Init {
            size: 1,
            time: VTime::ZERO,
        };
        set.raise(0, &ev);
        set.raise(0, &ev);
        assert_eq!(a.0.load(Ordering::Relaxed), 2);
        assert_eq!(b.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_set() {
        let set = ToolSet::new();
        assert!(set.is_empty());
        set.raise(0, &MpiEvent::Finalize { time: VTime::ZERO });
        set.complete(4);
    }

    #[test]
    fn interest_masks_filter_delivery() {
        let narrow = Arc::new(LifecycleOnly(AtomicUsize::new(0)));
        let wide = Arc::new(Counter(AtomicUsize::new(0)));
        let set = ToolSet::from_tools(vec![narrow.clone(), wide.clone()]);
        assert!(set.wants(EventKind::Init));
        assert!(set.wants(EventKind::Pcontrol)); // wide tool wants ALL
        set.raise(
            0,
            &MpiEvent::Init {
                size: 1,
                time: VTime::ZERO,
            },
        );
        set.raise(
            0,
            &MpiEvent::Pcontrol {
                level: 1,
                time: VTime::ZERO,
            },
        );
        assert_eq!(narrow.0.load(Ordering::Relaxed), 1, "Pcontrol filtered");
        assert_eq!(wide.0.load(Ordering::Relaxed), 2);

        // A set with only the narrow tool rejects non-lifecycle kinds
        // outright, so callers can skip event construction.
        let set = ToolSet::from_tools(vec![narrow.clone()]);
        assert!(set.wants(EventKind::Finalize));
        assert!(!set.wants(EventKind::SendEnqueued));
    }
}
