//! Stackful fibers: the cooperative tasks behind the discrete-event engine.
//!
//! Each virtual rank runs on its own heap-allocated stack and is entered
//! and left through a hand-written x86-64 context switch that saves only
//! the System-V callee-saved state (rbp, rbx, r12–r15, mxcsr, x87 control
//! word). A switch is ~20 ns, and a suspended fiber costs nothing but the
//! pages its stack has actually touched — which is what makes 16k+ ranks
//! on one OS thread practical where 16k threads are not.
//!
//! The module is intentionally minimal: [`Fiber::resume`] enters a fiber
//! from the scheduler, [`suspend_current`] switches the running fiber back
//! out. There is no preemption and no cross-thread migration; a fiber
//! resumes on whichever OS thread calls `resume`, and the simulator drives
//! all fibers of a world from one scheduler thread.
//!
//! Safety containment: this is the only place in the workspace (together
//! with the thread-local scheduler handle in `des.rs`) that needs
//! `unsafe`; the workspace-wide `unsafe_code = "deny"` lint is re-allowed
//! for exactly these two modules.
#![allow(unsafe_code)]

use std::alloc::{alloc, dealloc, Layout};
use std::arch::naked_asm;
use std::cell::Cell;

/// Default stack size per fiber. Large enough for the workload crates'
/// deepest frames (section scopes + collective internals), small enough
/// that 16384 fibers reserve only virtual address space: untouched stack
/// pages are never committed.
pub const DEFAULT_STACK_SIZE: usize = 512 * 1024;

/// Value planted at the low end of every fiber stack; if a fiber ever
/// grows past its stack the canary is the first thing it tramples.
const STACK_CANARY: u64 = 0xFEED_FACE_CAFE_F1BE;

/// Callee-saved context frame the switch pushes: 6 GP registers, plus a
/// 16-byte slot holding mxcsr / the x87 control word, plus the return
/// address consumed by `ret`.
const CTX_FRAME: usize = 6 * 8 + 16 + 8;

// The saved-state handshake: `switch_context(save, load)` pushes the
// callee-saved registers of the *current* stack, stores rsp through
// `save`, installs the stack pointer read from `load`, pops the same
// frame and returns on the new stack. Both sides of every switch are this
// one function, so the frame layout only has to agree with itself — and
// with `seed_stack` below, which fabricates the frame a brand-new fiber
// is first "restored" from.
#[unsafe(naked)]
unsafe extern "C" fn switch_context(_save: *mut *mut u8, _load: *mut *mut u8) {
    naked_asm!(
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "sub rsp, 16",
        "stmxcsr [rsp]",
        "fnstcw [rsp + 4]",
        "mov [rdi], rsp",
        "mov rsp, [rsi]",
        "ldmxcsr [rsp]",
        "fldcw [rsp + 4]",
        "add rsp, 16",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

// First code a new fiber executes: the seeded frame parked the FiberInner
// pointer in rbx (a callee-saved register, so the restore sequence above
// delivers it for free). Realign the stack and call into Rust.
#[unsafe(naked)]
unsafe extern "C" fn trampoline() {
    naked_asm!(
        "mov rdi, rbx",
        "and rsp, -16",
        "call {entry}",
        "ud2",
        entry = sym fiber_entry,
    )
}

extern "C" fn fiber_entry(inner: *mut FiberInner) -> ! {
    // SAFETY: `inner` is the boxed FiberInner whose address was seeded
    // into the new fiber's rbx by `seed_stack`; the box outlives the
    // fiber (it is owned by the `Fiber` that resumed us).
    let inner = unsafe { &mut *inner };
    let entry = inner.entry.take().expect("fiber entered twice");
    // The simulator wraps every rank body in catch_unwind, so a panic
    // reaching this frame is a harness bug; unwinding must never cross
    // the context-switch assembly.
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(entry)).is_err() {
        eprintln!("mpisim: panic escaped a fiber's unwind net; aborting");
        std::process::abort();
    }
    inner.done = true;
    loop {
        // Hand control back to the scheduler forever; a done fiber is
        // never resumed again, but a spurious resume must not fall off
        // the end of the stack.
        // SAFETY: same save/load discipline as `suspend_current`.
        unsafe { switch_context(&mut inner.fiber_rsp, &mut inner.caller_rsp) };
    }
}

/// Per-fiber bookkeeping. Boxed so its address is stable while the fiber
/// holds a pointer to it in a register.
struct FiberInner {
    /// Where the fiber's stack pointer is parked while it is suspended.
    fiber_rsp: *mut u8,
    /// Where the resuming caller's stack pointer is parked while the
    /// fiber runs.
    caller_rsp: *mut u8,
    done: bool,
    entry: Option<Box<dyn FnOnce()>>,
}

thread_local! {
    /// The fiber currently running on this OS thread (null outside any).
    static RUNNING: Cell<*mut FiberInner> = const { Cell::new(std::ptr::null_mut()) };
}

/// A suspended or runnable fiber owning its stack.
pub struct Fiber {
    inner: Box<FiberInner>,
    stack: *mut u8,
    layout: Layout,
}

impl Fiber {
    /// Create a fiber that will run `entry` when first resumed.
    ///
    /// # Safety
    ///
    /// The `'a` borrow inside `entry` is erased to `'static`. The caller
    /// must keep everything `entry` borrows alive until this `Fiber` has
    /// either run to completion or been dropped — the scheduler satisfies
    /// this by owning all fibers in the same scope as the borrowed state
    /// and never resuming a fiber after that scope unwinds.
    pub unsafe fn new<'a>(stack_size: usize, entry: Box<dyn FnOnce() + 'a>) -> Fiber {
        let entry: Box<dyn FnOnce() + 'static> = unsafe { std::mem::transmute(entry) };
        let size = stack_size.max(16 * 1024) & !15;
        let layout = Layout::from_size_align(size, 16).expect("fiber stack layout");
        // SAFETY: layout has non-zero size; alloc failure is checked.
        let stack = unsafe { alloc(layout) };
        assert!(!stack.is_null(), "fiber stack allocation failed");
        // SAFETY: the canary slot is the lowest 8 bytes of the fresh stack.
        unsafe { (stack as *mut u64).write(STACK_CANARY) };
        let mut inner = Box::new(FiberInner {
            fiber_rsp: std::ptr::null_mut(),
            caller_rsp: std::ptr::null_mut(),
            done: false,
            entry: Some(entry),
        });
        // SAFETY: stack covers [stack, stack+size); seed_stack writes the
        // initial context frame at its high end.
        inner.fiber_rsp = unsafe { seed_stack(stack, size, &mut *inner) };
        Fiber {
            inner,
            stack,
            layout,
        }
    }

    /// Run the fiber until it suspends or finishes; returns `true` once
    /// the fiber's entry function has returned.
    pub fn resume(&mut self) -> bool {
        assert!(!self.inner.done, "resumed a finished fiber");
        let inner: *mut FiberInner = &mut *self.inner;
        let previous = RUNNING.with(|running| running.replace(inner));
        // SAFETY: both pointers are fields of the live boxed FiberInner;
        // the seeded (or previously saved) fiber_rsp points into this
        // fiber's own stack allocation.
        unsafe { switch_context(&mut (*inner).caller_rsp, &mut (*inner).fiber_rsp) };
        RUNNING.with(|running| running.set(previous));
        // SAFETY: the canary slot was initialised in `new`.
        let canary = unsafe { (self.stack as *const u64).read() };
        assert!(
            canary == STACK_CANARY,
            "fiber stack overflow (raise the engine's stack size)"
        );
        self.inner.done
    }
}

impl Drop for Fiber {
    fn drop(&mut self) {
        // Dropping an unfinished fiber abandons its stack without running
        // the destructors of frames parked on it — a leak, never UB. The
        // scheduler only drops unfinished fibers while unwinding from a
        // harness-level failure.
        // SAFETY: allocated with this exact layout in `new`.
        unsafe { dealloc(self.stack, self.layout) };
    }
}

/// Suspend the currently running fiber, returning control to whoever
/// called [`Fiber::resume`]. Panics when called from outside any fiber.
pub fn suspend_current() {
    let inner = RUNNING.with(|running| running.get());
    assert!(!inner.is_null(), "suspend_current outside a fiber");
    // SAFETY: `inner` was installed by the `resume` frame still live on
    // the caller side of this switch.
    unsafe { switch_context(&mut (*inner).fiber_rsp, &mut (*inner).caller_rsp) };
}

/// Is the calling code executing inside a fiber?
#[cfg(test)]
pub fn in_fiber() -> bool {
    RUNNING.with(|running| !running.get().is_null())
}

/// Write the initial context frame a fresh fiber is "restored" from and
/// return the stack pointer to load. Layout mirrors `switch_context`'s
/// restore path exactly: mxcsr/fcw slot, r15..rbx..rbp, return address
/// (the trampoline), plus a null frame-pointer backstop above it.
///
/// # Safety
///
/// `stack` must point to a live allocation of `size` bytes.
unsafe fn seed_stack(stack: *mut u8, size: usize, inner: *mut FiberInner) -> *mut u8 {
    let top = unsafe { stack.add(size) };
    let frame = unsafe { top.sub(CTX_FRAME).cast::<u64>() };
    unsafe {
        frame.write(0x1F80); // [rsp]   mxcsr (default), [rsp+4] fcw below
        frame.cast::<u32>().add(1).write(0x037F); // x87 default control word
        frame.add(1).write(0); // pad to 16 bytes
        frame.add(2).write(0); // r15
        frame.add(3).write(0); // r14
        frame.add(4).write(0); // r13
        frame.add(5).write(0); // r12
        frame.add(6).write(inner as u64); // rbx -> FiberInner
        frame.add(7).write(0); // rbp
        frame.add(8).write(trampoline as *const () as usize as u64); // ret target
    }
    frame.cast::<u8>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn runs_to_completion() {
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        let mut f = unsafe { Fiber::new(64 * 1024, Box::new(move || h.set(true))) };
        assert!(f.resume());
        assert!(hit.get());
    }

    #[test]
    fn suspend_and_resume_interleave() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let mut f = unsafe {
            Fiber::new(
                64 * 1024,
                Box::new(move || {
                    l.borrow_mut().push("a");
                    suspend_current();
                    l.borrow_mut().push("b");
                    suspend_current();
                    l.borrow_mut().push("c");
                }),
            )
        };
        assert!(!f.resume());
        log.borrow_mut().push("between");
        assert!(!f.resume());
        assert!(f.resume());
        assert_eq!(*log.borrow(), ["a", "between", "b", "c"]);
    }

    #[test]
    fn many_fibers_round_robin() {
        let counter = Rc::new(Cell::new(0u64));
        let mut fibers: Vec<Fiber> = (0..100)
            .map(|_| {
                let c = counter.clone();
                unsafe {
                    Fiber::new(
                        32 * 1024,
                        Box::new(move || {
                            for _ in 0..10 {
                                c.set(c.get() + 1);
                                suspend_current();
                            }
                        }),
                    )
                }
            })
            .collect();
        let mut live = fibers.len();
        while live > 0 {
            live = 0;
            for f in &mut fibers {
                if !f.inner.done && !f.resume() {
                    live += 1;
                }
            }
        }
        assert_eq!(counter.get(), 1000);
    }

    #[test]
    fn borrowed_state_is_visible() {
        let mut total = 0u64;
        {
            let t = &mut total;
            let mut f = unsafe { Fiber::new(32 * 1024, Box::new(move || *t = 41 + 1)) };
            assert!(f.resume());
        }
        assert_eq!(total, 42);
    }

    #[test]
    fn in_fiber_reflects_context() {
        assert!(!in_fiber());
        let seen = Rc::new(Cell::new(false));
        let s = seen.clone();
        let mut f = unsafe { Fiber::new(32 * 1024, Box::new(move || s.set(in_fiber()))) };
        f.resume();
        assert!(seen.get());
        assert!(!in_fiber());
    }

    #[test]
    fn float_state_survives_switches() {
        // The context switch saves mxcsr/fcw; computed values live in
        // caller-saved xmm registers across the call boundary, but FP
        // results must still be correct after interleaved fibers.
        let out = Rc::new(Cell::new(0.0f64));
        let o = out.clone();
        let mut f = unsafe {
            Fiber::new(
                32 * 1024,
                Box::new(move || {
                    let x = 1.5f64;
                    suspend_current();
                    o.set(x * 2.0 + 0.25);
                }),
            )
        };
        assert!(!f.resume());
        let _noise = (0..100).map(|i| (i as f64).sqrt()).sum::<f64>();
        assert!(f.resume());
        assert_eq!(out.get(), 3.25);
    }
}
