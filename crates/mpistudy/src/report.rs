//! Cross-run analyses served entirely from the store.
//!
//! `study report` never simulates: it ingests every stored run document,
//! groups the convolution cells into the §5.1 sweep and the weak-scaling
//! cells into the Gustafson sweep, and emits
//!
//! * a pypop-style per-section table — parallel efficiency vs p,
//!   computation-scaling rows, Eq. 6 bound and the detected inflexion;
//! * the `results/*.csv` figures, rebuilt through the **same** `bench`
//!   row builders the ad-hoc harness uses, so the regenerated files are
//!   byte-identical to harness output for the same seeds;
//! * a machine-readable report document (`mpistudy-report-v1`).

use crate::doc::RunDoc;
use crate::store::RunStore;
use bench::{conv_run_from_cells, ConvRun};
use speedup::{ScalingStudy, StoredSectionRow};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Everything `study report` derives from one store.
#[derive(Debug)]
pub struct Report {
    /// Stored run documents considered (all of them).
    pub total_docs: usize,
    /// The convolution sweep group: `(machine, steps)` and its runs,
    /// seed-averaged per p (ascending).
    pub conv: Option<ConvGroup>,
    /// The weak-scaling group: `(machine, steps, rows_per_rank)` and its
    /// `(p, wall)` points (ascending p).
    pub weak: Option<WeakGroup>,
}

/// The seed-averaged §5.1-style convolution sweep found in the store.
#[derive(Debug)]
pub struct ConvGroup {
    /// Machine preset name.
    pub machine: String,
    /// Time steps per cell.
    pub steps: usize,
    /// Seeds that were averaged (ascending).
    pub seeds: Vec<u64>,
    /// Seed-averaged runs, ascending p.
    pub runs: Vec<ConvRun>,
    /// The multi-scale section study over the stored rows.
    pub study: ScalingStudy,
}

/// The weak-scaling sweep found in the store.
#[derive(Debug)]
pub struct WeakGroup {
    /// Machine preset name.
    pub machine: String,
    /// Time steps per cell.
    pub steps: usize,
    /// Image rows per rank.
    pub rows_per_rank: usize,
    /// `(p, wall_secs)`, ascending p.
    pub walls: Vec<(usize, f64)>,
}

/// Build the report from every document in the store. When the store
/// holds several distinct sweeps, the largest group wins (ties break on
/// the group key, deterministically).
pub fn build(store: &RunStore) -> Report {
    let docs = store.iter();
    Report {
        total_docs: docs.len(),
        conv: conv_group(&docs),
        weak: weak_group(&docs),
    }
}

fn conv_group(docs: &[RunDoc]) -> Option<ConvGroup> {
    let mut groups: BTreeMap<(String, usize), Vec<&RunDoc>> = BTreeMap::new();
    for doc in docs.iter().filter(|d| d.workload == "conv") {
        if let Some(steps) = doc.steps() {
            groups
                .entry((doc.machine.clone(), steps))
                .or_default()
                .push(doc);
        }
    }
    let ((machine, steps), members) = groups
        .into_iter()
        .max_by_key(|((m, s), v)| (v.len(), std::cmp::Reverse((m.clone(), *s))))?;

    // Seeds must be complete across every p for the average to mean the
    // same thing at every scale; use the intersection, ascending (the
    // order the harness feeds seeds in).
    let mut by_p: BTreeMap<usize, BTreeMap<u64, &RunDoc>> = BTreeMap::new();
    for doc in &members {
        by_p.entry(doc.p).or_default().insert(doc.seed, doc);
    }
    let mut seeds: Vec<u64> = by_p.values().next()?.keys().copied().collect();
    seeds.retain(|s| by_p.values().all(|m| m.contains_key(s)));
    if seeds.is_empty() {
        return None;
    }

    let runs: Vec<ConvRun> = by_p
        .iter()
        .map(|(&p, by_seed)| {
            let cells: Vec<_> = seeds.iter().map(|s| by_seed[s].outcome()).collect();
            conv_run_from_cells(p, &cells)
        })
        .collect();

    // Section study rows: per (p, label), seed-averaged — same seed order
    // as the figures. Labels come from the first seed's document (all
    // seeds of a deterministic workload profile the same sections).
    let mut rows: Vec<StoredSectionRow> = Vec::new();
    for (&p, by_seed) in &by_p {
        let first = by_seed[&seeds[0]];
        for section in &first.sections {
            let n = seeds.len() as f64;
            let mut avg = 0.0;
            let mut excl = 0.0;
            for s in &seeds {
                if let Some(sec) = by_seed[s].outcome().section(&section.label) {
                    avg += sec.avg_per_rank_secs;
                    excl += sec.total_excl_secs;
                }
            }
            rows.push(StoredSectionRow {
                p,
                label: section.label.clone(),
                avg_per_rank_secs: avg / n,
                total_excl_secs: excl / n,
            });
        }
    }
    Some(ConvGroup {
        machine,
        steps,
        seeds,
        runs,
        study: ScalingStudy::from_rows(&rows),
    })
}

fn weak_group(docs: &[RunDoc]) -> Option<WeakGroup> {
    let mut groups: BTreeMap<(String, usize, usize), Vec<&RunDoc>> = BTreeMap::new();
    for doc in docs.iter().filter(|d| d.workload == "conv-weak") {
        if let (Some(steps), Some(rpr)) = (doc.steps(), doc.rows_per_rank()) {
            groups
                .entry((doc.machine.clone(), steps, rpr))
                .or_default()
                .push(doc);
        }
    }
    let ((machine, steps, rows_per_rank), members) = groups
        .into_iter()
        .max_by_key(|(k, v)| (v.len(), std::cmp::Reverse(k.clone())))?;
    let mut walls: BTreeMap<usize, f64> = BTreeMap::new();
    for doc in members {
        walls.insert(doc.p, doc.wall_secs);
    }
    Some(WeakGroup {
        machine,
        steps,
        rows_per_rank,
        walls: walls.into_iter().collect(),
    })
}

impl Report {
    /// The human-facing report: the study verdict plus the pypop-style
    /// per-section table.
    pub fn render(&self) -> String {
        let mut out = format!("run store: {} documents\n", self.total_docs);
        if let Some(conv) = &self.conv {
            out.push_str(&format!(
                "\nconvolution sweep: machine={} steps={} seeds={:?} p={:?}\n\n",
                conv.machine,
                conv.steps,
                conv.seeds,
                conv.runs.iter().map(|r| r.p).collect::<Vec<_>>(),
            ));
            out.push_str(&conv.study.render());
            out.push('\n');
            out.push_str(&section_table(conv));
        } else {
            out.push_str("\n(no convolution sweep stored)\n");
        }
        if let Some(weak) = &self.weak {
            out.push_str(&format!(
                "\nweak scaling: machine={} steps={} rows/rank={}\n",
                weak.machine, weak.steps, weak.rows_per_rank
            ));
            out.push_str(&bench::render_table(
                &bench::WEAK_HEADER,
                &bench::weak_scaling_rows(weak.rows_per_rank, &weak.walls),
            ));
        }
        out
    }

    /// Regenerate the figure CSVs this store can serve, returning the
    /// paths written. Output is byte-identical to the `figures` harness
    /// for the same machine/steps/seeds because both call the same
    /// `bench` row builders on the same numbers.
    pub fn write_figures(&self, out_dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        if let Some(conv) = &self.conv {
            let rows = bench::fig6_rows(&conv.runs);
            if !rows.is_empty() {
                written.push(bench::write_csv(
                    out_dir,
                    "fig6",
                    &bench::FIG6_HEADER,
                    &rows,
                )?);
            }
        }
        if let Some(weak) = &self.weak {
            let rows = bench::weak_scaling_rows(weak.rows_per_rank, &weak.walls);
            written.push(bench::write_csv(
                out_dir,
                "weak_scaling",
                &bench::WEAK_HEADER,
                &rows,
            )?);
        }
        Ok(written)
    }

    /// Machine-readable report (`mpistudy-report-v1`, jsoncheck-valid).
    pub fn to_json(&self) -> String {
        let conv = match &self.conv {
            None => "null".to_string(),
            Some(conv) => {
                let sections: Vec<String> = conv
                    .study
                    .sections
                    .values()
                    .map(|s| {
                        let effs: Vec<String> = efficiency_series(s)
                            .iter()
                            .map(|(p, e)| format!("{{\"p\": {p}, \"eff\": {e}}}"))
                            .collect();
                        let bounds: Vec<String> = s
                            .bounds
                            .iter()
                            .map(|(p, b)| {
                                let b = if b.is_finite() {
                                    format!("{b}")
                                } else {
                                    "null".to_string()
                                };
                                format!("{{\"p\": {p}, \"bound\": {b}}}")
                            })
                            .collect();
                        format!(
                            "{{\"label\": \"{}\", \"inflexion_p\": {}, \
                             \"efficiency\": [{}], \"bounds\": [{}]}}",
                            s.label,
                            s.inflexion_p
                                .map(|p| p.to_string())
                                .unwrap_or_else(|| "null".into()),
                            effs.join(", "),
                            bounds.join(", "),
                        )
                    })
                    .collect();
                format!(
                    "{{\"machine\": \"{}\", \"steps\": {}, \"seeds\": {:?}, \
                     \"seq_total_secs\": {}, \"sections\": [{}]}}",
                    conv.machine,
                    conv.steps,
                    conv.seeds,
                    conv.study.seq_total_secs,
                    sections.join(", "),
                )
            }
        };
        let weak = match &self.weak {
            None => "null".to_string(),
            Some(weak) => {
                let walls: Vec<String> = weak
                    .walls
                    .iter()
                    .map(|(p, w)| format!("{{\"p\": {p}, \"wall_secs\": {w}}}"))
                    .collect();
                format!(
                    "{{\"machine\": \"{}\", \"steps\": {}, \"rows_per_rank\": {}, \
                     \"walls\": [{}]}}",
                    weak.machine,
                    weak.steps,
                    weak.rows_per_rank,
                    walls.join(", "),
                )
            }
        };
        format!(
            "{{\"schema\": \"mpistudy-report-v1\", \"total_docs\": {}, \
             \"conv\": {conv}, \"weak\": {weak}}}\n",
            self.total_docs,
        )
    }
}

/// Parallel efficiency of one section vs scale: `(t_base * p_base) /
/// (t_p * p)` over its per-process series — 1.0 is perfect scaling.
fn efficiency_series(s: &speedup::SectionStudy) -> Vec<(usize, f64)> {
    let pts = s.per_process.points();
    let Some(base) = pts.first() else {
        return Vec::new();
    };
    let base_area = base.secs * base.p as f64;
    if base_area <= 0.0 {
        // The section does not exist at the baseline (HALO with one
        // rank): efficiency relative to it is undefined, not zero.
        return Vec::new();
    }
    pts.iter()
        .map(|pt| {
            let area = pt.secs * pt.p as f64;
            (pt.p, if area > 0.0 { base_area / area } else { 0.0 })
        })
        .collect()
}

/// The pypop-style table: one block per section, with parallel
/// efficiency, computation scaling (total exclusive time relative to the
/// baseline) and the Eq. 6 bound at every stored scale.
fn section_table(conv: &ConvGroup) -> String {
    let ps: Vec<usize> = conv.runs.iter().map(|r| r.p).collect();
    let mut header: Vec<String> = vec!["section".into(), "metric".into()];
    header.extend(ps.iter().map(|p| format!("p={p}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let base_p = ps.first().copied().unwrap_or(1);
    let mut rows = Vec::new();
    for s in conv.study.sections.values() {
        let effs: BTreeMap<usize, f64> = efficiency_series(s).into_iter().collect();
        let mut eff_row = vec![s.label.clone(), "parallel_eff".into()];
        let mut comp_row = vec![String::new(), "comp_scaling".into()];
        let mut bound_row = vec![String::new(), "eq6_bound".into()];
        let base_total = conv
            .runs
            .first()
            .and_then(|r| r.section_total.get(&s.label))
            .copied()
            .unwrap_or(0.0);
        for &p in &ps {
            eff_row.push(
                effs.get(&p)
                    .map(|e| format!("{e:.3}"))
                    .unwrap_or_else(|| "-".into()),
            );
            let total = conv
                .runs
                .iter()
                .find(|r| r.p == p)
                .and_then(|r| r.section_total.get(&s.label))
                .copied()
                .unwrap_or(0.0);
            comp_row.push(if base_total > 0.0 {
                format!("{:.3}", total / base_total)
            } else {
                "-".into()
            });
            bound_row.push(
                s.bounds
                    .iter()
                    .find(|(bp, _)| *bp == p)
                    .map(|(_, b)| bench::f2(*b))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(eff_row);
        rows.push(comp_row);
        rows.push(bound_row);
    }
    let mut out = format!(
        "per-section scaling (baseline p={base_p}; parallel_eff 1.000 = perfect, \
         comp_scaling 1.000 = work conserved):\n"
    );
    out.push_str(&bench::render_table(&header_refs, &rows));
    if let Some(inflexion) = conv
        .study
        .saturated_sections()
        .iter()
        .map(|s| format!("{} (p={})", s.label, s.inflexion_p.unwrap_or(0)))
        .reduce(|a, b| format!("{a}, {b}"))
    {
        out.push_str(&format!(
            "sections past their inflexion before the largest scale: {inflexion}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GridSpec;
    use crate::pool::run_sweep;

    fn tmp_store(tag: &str) -> RunStore {
        let dir =
            std::env::temp_dir().join(format!("mpistudy-report-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }

    #[test]
    fn report_from_small_sweep() {
        let store = tmp_store("basic");
        let grid =
            GridSpec::parse("workload=conv machine=nehalem_cluster p=1,4,16 steps=5 seeds=0,1")
                .unwrap();
        run_sweep(&store, &grid.cells(), 2);
        let report = build(&store);
        let conv = report.conv.as_ref().expect("conv group");
        assert_eq!(conv.seeds, vec![0, 1]);
        assert_eq!(
            conv.runs.iter().map(|r| r.p).collect::<Vec<_>>(),
            vec![1, 4, 16]
        );
        let text = report.render();
        assert!(text.contains("parallel_eff"));
        assert!(text.contains("eq6_bound"));
        assert!(text.contains("CONVOLVE"));
        mpisim::jsoncheck::assert_json(&report.to_json(), "report document");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn stored_runs_match_the_harness_bitwise() {
        // The acceptance criterion behind figure regeneration: the seed-
        // averaged runs reconstructed from stored documents must equal
        // measure_convolution's in-process result bit-for-bit.
        let store = tmp_store("bitwise");
        let grid = GridSpec::parse("workload=conv machine=nehalem_cluster p=1,4 steps=5 seeds=0,1")
            .unwrap();
        run_sweep(&store, &grid.cells(), 2);
        let conv = build(&store).conv.expect("conv group");
        let machine = machine::presets::nehalem_cluster();
        for run in &conv.runs {
            let direct = bench::measure_convolution(run.p, 5, &machine, &[0, 1]);
            assert_eq!(run.wall.to_bits(), direct.wall.to_bits(), "p={}", run.p);
            for (label, total) in &run.section_total {
                assert_eq!(
                    total.to_bits(),
                    direct.section_total[label].to_bits(),
                    "p={} {label}",
                    run.p
                );
            }
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn fig6_regenerates_byte_identical_to_the_harness() {
        // p=1 is the baseline; 64 and 80 are paper scales Fig. 6 reports.
        let store = tmp_store("fig6");
        let grid =
            GridSpec::parse("workload=conv machine=nehalem_cluster p=1,64,80 steps=5 seeds=0,1")
                .unwrap();
        run_sweep(&store, &grid.cells(), 2);
        let report = build(&store);
        let out = store.root().join("figures");
        let written = report.write_figures(&out).unwrap();
        assert!(written.iter().any(|p| p.ends_with("fig6.csv")));

        // The ad-hoc harness path on the same cells.
        let machine = machine::presets::nehalem_cluster();
        let runs: Vec<ConvRun> = [1usize, 64, 80]
            .iter()
            .map(|&p| bench::measure_convolution(p, 5, &machine, &[0, 1]))
            .collect();
        let mut expected = bench::FIG6_HEADER.join(",");
        expected.push('\n');
        for row in bench::fig6_rows(&runs) {
            expected.push_str(&row.join(","));
            expected.push('\n');
        }
        let stored = std::fs::read_to_string(out.join("fig6.csv")).unwrap();
        assert_eq!(stored, expected);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn weak_group_and_figures() {
        let store = tmp_store("weak");
        let grid = GridSpec::parse(
            "workload=conv-weak machine=nehalem_cluster p=1,2,4 rows_per_rank=64 steps=4 seeds=31",
        )
        .unwrap();
        run_sweep(&store, &grid.cells(), 2);
        let report = build(&store);
        let weak = report.weak.as_ref().expect("weak group");
        assert_eq!(weak.rows_per_rank, 64);
        assert_eq!(weak.walls.len(), 3);
        let out = store.root().join("figures");
        let written = report.write_figures(&out).unwrap();
        assert!(written.iter().any(|p| p.ends_with("weak_scaling.csv")));
        // Byte-identity with the harness path for the same cells.
        let machine = machine::presets::nehalem_cluster();
        let walls: Vec<(usize, f64)> = [1usize, 2, 4]
            .iter()
            .map(|&p| (p, bench::weak_conv_cell(p, 64, 4, &machine, 31).wall_secs))
            .collect();
        let harness_rows = bench::weak_scaling_rows(64, &walls);
        let stored = std::fs::read_to_string(out.join("weak_scaling.csv")).unwrap();
        let mut expected = bench::WEAK_HEADER.join(",");
        expected.push('\n');
        for row in harness_rows {
            expected.push_str(&row.join(","));
            expected.push('\n');
        }
        assert_eq!(stored, expected);
        let _ = std::fs::remove_dir_all(store.root());
    }
}
