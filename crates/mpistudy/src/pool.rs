//! The sweep worker pool.
//!
//! Each grid cell is a full DES world — single-threaded, deterministic,
//! CPU-bound — so cells parallelize perfectly across OS threads: `--jobs
//! N` runs N worlds at once with zero shared mutable simulation state.
//! The pool is a plain shared `Mutex<VecDeque>` work queue (cells are
//! seconds-long; queue contention is noise).
//!
//! Before simulating, a worker checks the store: a cell whose config hash
//! is already present is **skipped without touching any simulation code**
//! — the warm-sweep property the tests pin (`executed == 0`). Machine
//! calibration is likewise derived once per distinct machine model
//! (process-wide, `machine::calibration::cached`) and persisted once per
//! fingerprint.

use crate::config::{machine_fingerprint, resolve_machine, CellConfig, Workload};
use crate::doc::RunDoc;
use crate::store::RunStore;
use bench::CellOutcome;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// What a sweep did: how many cells it simulated vs served from the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Cells actually simulated (and inserted).
    pub executed: usize,
    /// Cells already present — skipped without running any simulation.
    pub cached: usize,
}

/// Simulate one cell (no store interaction).
pub fn execute_cell(cfg: &CellConfig, machine: &machine::MachineModel) -> CellOutcome {
    match cfg.workload {
        Workload::Conv { steps } => bench::conv_cell(cfg.p, steps, machine, cfg.seed),
        Workload::ConvWeak {
            rows_per_rank,
            steps,
        } => bench::weak_conv_cell(cfg.p, rows_per_rank, steps, machine, cfg.seed),
        Workload::Lulesh { s, iters, threads } => {
            bench::lulesh_cell(cfg.p, s, iters, threads, machine, cfg.seed)
        }
    }
}

/// Fan `cells` across `jobs` worker threads against `store`. Returns the
/// executed/cached split. Panics in a worker (a failed simulation)
/// propagate after the pool drains.
pub fn run_sweep(store: &RunStore, cells: &[CellConfig], jobs: usize) -> SweepStats {
    let jobs = jobs.max(1);
    let queue: Arc<Mutex<VecDeque<CellConfig>>> =
        Arc::new(Mutex::new(cells.iter().cloned().collect()));
    let stats = Arc::new(Mutex::new(SweepStats::default()));
    let worker = |queue: Arc<Mutex<VecDeque<CellConfig>>>,
                  stats: Arc<Mutex<SweepStats>>,
                  store: RunStore| {
        move || loop {
            let Some(cfg) = queue.lock().expect("sweep queue").pop_front() else {
                return;
            };
            // Resolving the preset is cheap; the calibration behind it is
            // cached process-wide by the machine crate.
            let machine = resolve_machine(&cfg.machine).expect("validated at parse time");
            let fp = machine_fingerprint(&machine);
            let hash = cfg.hash(&fp);
            if store.contains(&hash) {
                stats.lock().expect("sweep stats").cached += 1;
                continue;
            }
            if !store.contains_machine(&fp) {
                let calibration = machine::calibration::cached(&machine);
                store
                    .insert_machine(&fp, &calibration.to_json())
                    .expect("store machine calibration");
            }
            let outcome = execute_cell(&cfg, &machine);
            let doc = RunDoc::new(&cfg, &fp, &outcome);
            store.insert(&doc).expect("store run document");
            stats.lock().expect("sweep stats").executed += 1;
        }
    };
    if jobs == 1 {
        // Run inline: keeps single-job sweeps debuggable (no thread hop).
        worker(queue, stats.clone(), store.clone())();
    } else {
        let handles: Vec<_> = (0..jobs)
            .map(|_| std::thread::spawn(worker(queue.clone(), stats.clone(), store.clone())))
            .collect();
        for h in handles {
            h.join().expect("sweep worker panicked");
        }
    }
    let out = *stats.lock().expect("sweep stats");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GridSpec;

    fn tmp_store(tag: &str) -> RunStore {
        let dir =
            std::env::temp_dir().join(format!("mpistudy-pool-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }

    #[test]
    fn warm_sweep_executes_nothing() {
        // The tentpole acceptance test: a second sweep over an identical
        // grid must be served entirely from the store.
        let store = tmp_store("warm");
        let grid =
            GridSpec::parse("workload=conv machine=ideal p=1,2,4 steps=3 seeds=0,1").unwrap();
        let cold = run_sweep(&store, &grid.cells(), 2);
        assert_eq!(
            cold,
            SweepStats {
                executed: 6,
                cached: 0
            }
        );
        let warm = run_sweep(&store, &grid.cells(), 2);
        assert_eq!(
            warm,
            SweepStats {
                executed: 0,
                cached: 6
            }
        );
        // And the store holds exactly the grid, plus one machine doc.
        assert_eq!(store.iter().len(), 6);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn partial_overlap_executes_only_the_new_cells() {
        let store = tmp_store("overlap");
        let small = GridSpec::parse("workload=conv machine=ideal p=1,2 steps=3").unwrap();
        run_sweep(&store, &small.cells(), 1);
        let bigger = GridSpec::parse("workload=conv machine=ideal p=1,2,4,8 steps=3").unwrap();
        let stats = run_sweep(&store, &bigger.cells(), 2);
        assert_eq!(
            stats,
            SweepStats {
                executed: 2,
                cached: 2
            }
        );
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn parallel_and_serial_sweeps_store_identical_documents() {
        // Determinism across the pool: each cell is an isolated world, so
        // jobs=4 must produce byte-identical documents to jobs=1.
        let grid =
            GridSpec::parse("workload=conv machine=ideal p=1,2,4,8 steps=3 seeds=0,1").unwrap();
        let serial = tmp_store("serial");
        let parallel = tmp_store("parallel");
        run_sweep(&serial, &grid.cells(), 1);
        run_sweep(&parallel, &grid.cells(), 4);
        let a: Vec<String> = serial.iter().iter().map(RunDoc::to_json).collect();
        let b: Vec<String> = parallel.iter().iter().map(RunDoc::to_json).collect();
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(serial.root());
        let _ = std::fs::remove_dir_all(parallel.root());
    }
}
