//! The sweep-service CLI.
//!
//! ```text
//! study run    --store DIR --grid "workload=conv machine=nehalem_cluster \
//!                                  p=1,8,64 steps=250 seeds=0,1,2" [--jobs N]
//! study report --store DIR [--out DIR] [--json]
//! study ls     --store DIR
//! study gc     --store DIR
//! study bench  [--jobs N] [--write]
//! ```
//!
//! `run` expands the grid, skips every cell whose config hash is already
//! stored (a warm sweep executes zero simulations) and fans the rest over
//! `--jobs` worker threads. `report` serves all analyses from the store —
//! it never simulates. `gc` verifies every document (parse + content hash
//! vs filename) and removes violators. `bench` times a cold jobs=1 sweep
//! against a cold jobs=N sweep and a warm rerun, and with `--write`
//! merges the numbers into `BENCH_profiler.json`.

use mpistudy::{config::GridSpec, report, run_sweep, RunStore, SweepStats};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
    };
    let mut store_dir: Option<PathBuf> = None;
    let mut grid: Option<String> = None;
    let mut jobs = 1usize;
    let mut out: Option<PathBuf> = None;
    let mut json = false;
    let mut write = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--store" => {
                store_dir = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--grid" => {
                grid = Some(args[i + 1].clone());
                i += 2;
            }
            "--jobs" => {
                jobs = args[i + 1].parse().expect("--jobs N");
                i += 2;
            }
            "--out" => {
                out = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--write" => {
                write = true;
                i += 1;
            }
            other => {
                eprintln!("unknown option: {other}");
                usage();
            }
        }
    }

    match command.as_str() {
        "run" => {
            let store = open_store(store_dir);
            let spec = grid.unwrap_or_else(|| {
                eprintln!("run needs --grid \"...\"");
                std::process::exit(2);
            });
            let grid = GridSpec::parse(&spec).unwrap_or_else(|e| {
                eprintln!("bad grid: {e}");
                std::process::exit(2);
            });
            let cells = grid.cells();
            let start = Instant::now();
            let stats = run_sweep(&store, &cells, jobs);
            report_sweep(&stats, cells.len(), jobs, start.elapsed().as_secs_f64());
        }
        "report" => {
            let store = open_store(store_dir);
            let rep = report::build(&store);
            if json {
                print!("{}", rep.to_json());
            } else {
                print!("{}", rep.render());
            }
            if let Some(out) = out {
                match rep.write_figures(&out) {
                    Ok(paths) => {
                        for p in paths {
                            eprintln!("wrote {}", p.display());
                        }
                    }
                    Err(e) => {
                        eprintln!("figure write failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "ls" => {
            let store = open_store(store_dir);
            for doc in store.iter() {
                println!(
                    "{}  {:9} p={:<5} seed={:<3} machine={} wall={:.3}s",
                    doc.hash, doc.workload, doc.p, doc.seed, doc.machine, doc.wall_secs
                );
            }
        }
        "gc" => {
            let store = open_store(store_dir);
            match store.gc() {
                Ok(rep) => {
                    println!(
                        "gc: {} intact, {} removed, {} stale tmp",
                        rep.intact,
                        rep.removed.len(),
                        rep.stale_tmp
                    );
                    for p in &rep.removed {
                        eprintln!("removed corrupt {}", p.display());
                    }
                }
                Err(e) => {
                    eprintln!("gc failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "bench" => bench_sweeps(jobs, write),
        other => {
            eprintln!("unknown command: {other}");
            usage();
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: study <run|report|ls|gc|bench> [options]\n\
         \n\
         study run    --store DIR --grid \"SPEC\" [--jobs N]\n\
         study report --store DIR [--out DIR] [--json]\n\
         study ls     --store DIR\n\
         study gc     --store DIR\n\
         study bench  [--jobs N] [--write]\n\
         \n\
         grid SPEC: workload=conv|conv-weak|lulesh machine=NAME p=LIST\n\
         \x20          [steps=N] [rows_per_rank=N] [s=N] [iters=N] [threads=N]\n\
         \x20          [seeds=LIST]"
    );
    std::process::exit(2);
}

fn open_store(dir: Option<PathBuf>) -> RunStore {
    let dir = dir.unwrap_or_else(|| {
        eprintln!("missing --store DIR");
        std::process::exit(2);
    });
    RunStore::open(dir).unwrap_or_else(|e| {
        eprintln!("cannot open store: {e}");
        std::process::exit(1);
    })
}

fn report_sweep(stats: &SweepStats, total: usize, jobs: usize, secs: f64) {
    println!(
        "sweep: {} cells, {} executed, {} cached ({}% hit), jobs={}, {:.2}s",
        total,
        stats.executed,
        stats.cached,
        (100 * stats.cached).checked_div(total).unwrap_or(0),
        jobs,
        secs,
    );
}

/// Time the orchestrator itself: cold serial vs cold parallel vs warm.
/// The grid is fixed (8 convolution cells on the ideal machine) so the
/// numbers are comparable across hosts and revisions.
fn bench_sweeps(jobs: usize, write: bool) {
    let jobs = if jobs > 1 {
        jobs
    } else {
        std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 4))
    };
    // Eight mid-scale cells on the calibrated machine: heavy enough that
    // the serial sweep takes seconds (queue overhead is invisible), small
    // enough to finish promptly on one core.
    let spec =
        "workload=conv machine=nehalem_cluster p=64,80,96,112,128,144,192,256 steps=400 seeds=17";
    let grid = GridSpec::parse(spec).expect("bench grid");
    let cells = grid.cells();
    let fresh = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("mpistudy-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RunStore::open(dir).expect("bench store")
    };

    let serial_store = fresh("serial");
    let start = Instant::now();
    let serial_stats = run_sweep(&serial_store, &cells, 1);
    let cold_serial = start.elapsed().as_secs_f64();
    assert_eq!(serial_stats.executed, cells.len());

    let par_store = fresh("parallel");
    let start = Instant::now();
    run_sweep(&par_store, &cells, jobs);
    let cold_parallel = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let warm_stats = run_sweep(&par_store, &cells, jobs);
    let warm = start.elapsed().as_secs_f64();
    assert_eq!(warm_stats.executed, 0, "warm sweep must simulate nothing");

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = cold_serial / cold_parallel;
    println!("grid: {spec} ({} cells)", cells.len());
    println!("study_sweep_secs_cold: {cold_serial:.2} (jobs=1)");
    println!("study_sweep_secs_cold_jobs{jobs}: {cold_parallel:.2}");
    println!("study_sweep_secs_warm: {warm:.4} (jobs={jobs}, 100% cache hits)");
    println!("study_jobs_speedup: {speedup:.2} (host cores: {host_cores})");
    let _ = std::fs::remove_dir_all(serial_store.root());
    let _ = std::fs::remove_dir_all(par_store.root());

    if write {
        merge_into_bench_json(cold_serial, cold_parallel, warm, speedup, jobs, host_cores);
    }
}

/// Merge the study_* keys into BENCH_profiler.json (the bench binary owns
/// that file but cannot depend on this crate, so the merge lives here:
/// existing study_ lines are replaced, the rest of the file is untouched).
fn merge_into_bench_json(
    cold: f64,
    cold_jobs: f64,
    warm: f64,
    speedup: f64,
    jobs: usize,
    host_cores: usize,
) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_profiler.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "cannot read {}: {e} (run the bench binary first)",
                path.display()
            );
            std::process::exit(1);
        }
    };
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"study_"))
        .map(|l| l.to_string())
        .collect();
    let insert_at = lines
        .iter()
        .position(|l| l.trim_start().starts_with("\"config\""))
        .unwrap_or(lines.len().saturating_sub(1));
    let new_lines = [
        format!("  \"study_sweep_secs_cold\": {cold:.2},"),
        format!("  \"study_sweep_secs_cold_jobs\": {cold_jobs:.2},"),
        format!("  \"study_sweep_secs_warm\": {warm:.4},"),
        format!("  \"study_jobs_speedup\": {speedup:.2},"),
        format!("  \"study_jobs\": {jobs},"),
        format!("  \"study_host_cores\": {host_cores},"),
    ];
    for (k, line) in new_lines.iter().enumerate() {
        lines.insert(insert_at + k, line.clone());
    }
    let mut out = lines.join("\n");
    out.push('\n');
    mpisim::jsoncheck::assert_json(&out, "merged BENCH_profiler.json");
    std::fs::write(&path, out).expect("write BENCH_profiler.json");
    println!("merged study_* keys into {}", path.display());
}
