//! Grid-cell configuration: the canonical string and its content hash.
//!
//! A cell is one `(workload, machine, p, seed)` simulation. Its canonical
//! string is the *complete* recipe — every parameter that can change the
//! simulated result appears in it, including a fingerprint of the machine
//! model's full parameter dump (so editing a preset never reuses a stale
//! run). The store key is the FNV-1a hash of that string: equal configs
//! collide onto the same document, different configs practically never do.

use machine::MachineModel;
use mpi_sections::fasthash;

/// What a grid cell simulates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// The §5.1 convolution at the paper's image size.
    Conv {
        /// Time steps.
        steps: usize,
    },
    /// The weak-scaling convolution: constant rows per rank.
    ConvWeak {
        /// Image rows owned by each rank.
        rows_per_rank: usize,
        /// Time steps.
        steps: usize,
    },
    /// The §5.2 LULESH proxy in hybrid MPI+OpenMP configuration.
    Lulesh {
        /// Per-rank problem size (elements per edge).
        s: usize,
        /// Timeloop iterations.
        iters: usize,
        /// OpenMP threads per rank.
        threads: usize,
    },
}

impl Workload {
    /// The workload's name as it appears in grid specs and documents.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Conv { .. } => "conv",
            Workload::ConvWeak { .. } => "conv-weak",
            Workload::Lulesh { .. } => "lulesh",
        }
    }

    /// The workload's parameters in canonical `key=value` order.
    fn canonical_params(&self) -> String {
        match self {
            Workload::Conv { steps } => format!("steps={steps}"),
            Workload::ConvWeak {
                rows_per_rank,
                steps,
            } => format!("rows_per_rank={rows_per_rank} steps={steps}"),
            Workload::Lulesh { s, iters, threads } => {
                format!("s={s} iters={iters} threads={threads}")
            }
        }
    }
}

/// One grid cell: a single simulation the store can hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellConfig {
    /// The workload and its parameters.
    pub workload: Workload,
    /// Machine preset name (resolved via [`resolve_machine`]).
    pub machine: String,
    /// MPI process count.
    pub p: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl CellConfig {
    /// The canonical configuration string. `machine_fp` is the FNV-1a
    /// fingerprint of the machine model's full parameter dump
    /// ([`machine_fingerprint`]); folding it in means a cell priced under
    /// an edited machine model hashes to a different store key.
    pub fn canonical(&self, machine_fp: &str) -> String {
        format!(
            "mpistudy-cell-v1 workload={} {} machine={} machine_fp={} p={} seed={}",
            self.workload.name(),
            self.workload.canonical_params(),
            self.machine,
            machine_fp,
            self.p,
            self.seed,
        )
    }

    /// The store key: 16 hex digits of FNV-1a over the canonical string.
    pub fn hash(&self, machine_fp: &str) -> String {
        fasthash::fnv1a_hex(&self.canonical(machine_fp))
    }
}

/// The FNV-1a fingerprint of a machine model's full parameter dump.
pub fn machine_fingerprint(m: &MachineModel) -> String {
    fasthash::fnv1a_hex(&m.describe())
}

/// Resolve a machine preset by name.
pub fn resolve_machine(name: &str) -> Result<MachineModel, String> {
    match name {
        "nehalem" | "nehalem_cluster" => Ok(machine::presets::nehalem_cluster()),
        "knl" => Ok(machine::presets::knl()),
        "broadwell" | "dual_broadwell" => Ok(machine::presets::dual_broadwell()),
        "future" | "future_manycore" => Ok(machine::presets::future_manycore()),
        "ideal" => Ok(machine::presets::ideal()),
        other => Err(format!(
            "unknown machine '{other}' (known: nehalem_cluster, knl, \
             dual_broadwell, future_manycore, ideal)"
        )),
    }
}

/// A parsed `--grid` specification, expandable into cells.
///
/// Syntax: whitespace-separated `key=value` pairs; `p` and `seeds` take
/// comma-separated lists. Example:
///
/// ```text
/// workload=conv machine=nehalem_cluster p=1,8,64 steps=250 seeds=0,1,2
/// ```
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Workload template (per-cell `p`/`seed` filled in on expansion).
    pub workload: Workload,
    /// Machine preset name.
    pub machine: String,
    /// Process counts to sweep.
    pub ps: Vec<usize>,
    /// Seeds to sweep.
    pub seeds: Vec<u64>,
}

impl GridSpec {
    /// Parse a grid spec string.
    pub fn parse(spec: &str) -> Result<GridSpec, String> {
        let mut workload = None;
        let mut machine = None;
        let mut ps = Vec::new();
        let mut seeds = Vec::new();
        let mut steps = None;
        let mut rows_per_rank = None;
        let mut s = None;
        let mut iters = None;
        let mut threads = None;
        for pair in spec.split_whitespace() {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("grid spec entry '{pair}' is not key=value"))?;
            let list_usize = |v: &str| -> Result<Vec<usize>, String> {
                v.split(',')
                    .map(|x| x.parse().map_err(|_| format!("bad number '{x}' in {key}")))
                    .collect()
            };
            match key {
                "workload" => workload = Some(value.to_string()),
                "machine" => machine = Some(value.to_string()),
                "p" => ps = list_usize(value)?,
                "seeds" => {
                    seeds = value
                        .split(',')
                        .map(|x| x.parse().map_err(|_| format!("bad seed '{x}'")))
                        .collect::<Result<_, String>>()?;
                }
                "steps" => steps = Some(list_usize(value)?[0]),
                "rows_per_rank" => rows_per_rank = Some(list_usize(value)?[0]),
                "s" => s = Some(list_usize(value)?[0]),
                "iters" => iters = Some(list_usize(value)?[0]),
                "threads" => threads = Some(list_usize(value)?[0]),
                other => return Err(format!("unknown grid key '{other}'")),
            }
        }
        let workload = match workload.as_deref() {
            Some("conv") => Workload::Conv {
                steps: steps.ok_or("conv needs steps=")?,
            },
            Some("conv-weak") => Workload::ConvWeak {
                rows_per_rank: rows_per_rank.ok_or("conv-weak needs rows_per_rank=")?,
                steps: steps.ok_or("conv-weak needs steps=")?,
            },
            Some("lulesh") => Workload::Lulesh {
                s: s.ok_or("lulesh needs s=")?,
                iters: iters.ok_or("lulesh needs iters=")?,
                threads: threads.ok_or("lulesh needs threads=")?,
            },
            Some(other) => return Err(format!("unknown workload '{other}'")),
            None => return Err("grid spec needs workload=".to_string()),
        };
        let machine = machine.ok_or("grid spec needs machine=")?;
        resolve_machine(&machine)?;
        if ps.is_empty() {
            return Err("grid spec needs p=".to_string());
        }
        if seeds.is_empty() {
            seeds.push(0);
        }
        Ok(GridSpec {
            workload,
            machine,
            ps,
            seeds,
        })
    }

    /// Expand to the full cell list (p outer, seed inner — the order the
    /// figures consume seeds in).
    pub fn cells(&self) -> Vec<CellConfig> {
        let mut out = Vec::with_capacity(self.ps.len() * self.seeds.len());
        for &p in &self.ps {
            for &seed in &self.seeds {
                out.push(CellConfig {
                    workload: self.workload.clone(),
                    machine: self.machine.clone(),
                    p,
                    seed,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_and_hash_are_stable() {
        let cell = CellConfig {
            workload: Workload::Conv { steps: 250 },
            machine: "nehalem_cluster".into(),
            p: 64,
            seed: 1,
        };
        let canon = cell.canonical("deadbeefdeadbeef");
        assert_eq!(
            canon,
            "mpistudy-cell-v1 workload=conv steps=250 machine=nehalem_cluster \
             machine_fp=deadbeefdeadbeef p=64 seed=1"
        );
        // The hash is the plain FNV-1a of the canonical string — pinned so
        // a refactor can never silently orphan every stored run.
        assert_eq!(cell.hash("deadbeefdeadbeef"), fasthash::fnv1a_hex(&canon));
        assert_eq!(cell.hash("deadbeefdeadbeef").len(), 16);
    }

    #[test]
    fn hash_distinguishes_every_axis() {
        let base = CellConfig {
            workload: Workload::Conv { steps: 250 },
            machine: "nehalem_cluster".into(),
            p: 64,
            seed: 1,
        };
        let fp = "0000000000000000";
        let mut other = base.clone();
        other.p = 65;
        assert_ne!(base.hash(fp), other.hash(fp));
        let mut other = base.clone();
        other.seed = 2;
        assert_ne!(base.hash(fp), other.hash(fp));
        let mut other = base.clone();
        other.workload = Workload::Conv { steps: 251 };
        assert_ne!(base.hash(fp), other.hash(fp));
        assert_ne!(base.hash(fp), base.hash("0000000000000001"));
    }

    #[test]
    fn grid_spec_expands_p_outer_seed_inner() {
        let grid =
            GridSpec::parse("workload=conv machine=nehalem p=1,8 steps=50 seeds=0,1").unwrap();
        let cells = grid.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!((cells[0].p, cells[0].seed), (1, 0));
        assert_eq!((cells[1].p, cells[1].seed), (1, 1));
        assert_eq!((cells[2].p, cells[2].seed), (8, 0));
        assert_eq!((cells[3].p, cells[3].seed), (8, 1));
    }

    #[test]
    fn grid_spec_rejects_nonsense() {
        assert!(GridSpec::parse("workload=conv machine=nehalem steps=5").is_err()); // no p
        assert!(GridSpec::parse("workload=conv machine=marsrover p=1 steps=5").is_err());
        assert!(GridSpec::parse("workload=quantum machine=knl p=1").is_err());
        assert!(GridSpec::parse("workload=conv machine=knl p=1").is_err()); // no steps
        assert!(GridSpec::parse("workload=lulesh machine=knl p=1 s=8 iters=3").is_err());
    }

    #[test]
    fn lulesh_and_weak_specs_parse() {
        let g = GridSpec::parse("workload=lulesh machine=knl p=1,8 s=8 iters=3 threads=4 seeds=5")
            .unwrap();
        assert_eq!(
            g.workload,
            Workload::Lulesh {
                s: 8,
                iters: 3,
                threads: 4
            }
        );
        let g =
            GridSpec::parse("workload=conv-weak machine=nehalem p=1,2 rows_per_rank=468 steps=10")
                .unwrap();
        assert_eq!(
            g.workload,
            Workload::ConvWeak {
                rows_per_rank: 468,
                steps: 10
            }
        );
        assert_eq!(g.seeds, vec![0]); // default seed
    }
}
