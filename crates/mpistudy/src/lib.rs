//! # mpistudy — the sweep orchestrator and run store
//!
//! The paper's §5 evaluation is a *grid*: every figure is some slice of
//! (process count × machine × workload × seed). The ad-hoc `figures`
//! harness re-simulates that grid from scratch on every invocation; this
//! crate makes the grid a first-class, persistent object:
//!
//! * [`config`] — a grid cell's canonical configuration and its stable
//!   FNV-1a content hash (the store key);
//! * [`doc`] — the metrics document one simulated cell produces,
//!   round-tripping byte-identically through the hand-rolled JSON layer;
//! * [`store`] — the content-addressed on-disk store
//!   (`runs/<hash>.json`, `machines/<hash>.json`);
//! * [`pool`] — the worker pool that fans a grid across OS threads (each
//!   run is a single-threaded DES world) and skips cells already stored:
//!   a warm sweep touches zero simulation code;
//! * [`report`] — cross-run analyses served entirely from the store:
//!   per-section efficiency-vs-p, computation scaling, Eq. 6 bounds with
//!   inflexion detection, and the `results/*.csv` figures regenerated
//!   byte-identically to the harness (both share `bench`'s row builders).
//!
//! The `study` binary (`src/bin/study.rs`) drives all of it:
//! `study run --grid … --jobs N`, `study report`, `study gc`.

pub mod config;
pub mod doc;
pub mod pool;
pub mod report;
pub mod store;

pub use config::{CellConfig, GridSpec, Workload};
pub use doc::RunDoc;
pub use pool::{run_sweep, SweepStats};
pub use store::RunStore;
