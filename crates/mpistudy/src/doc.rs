//! The metrics document one simulated grid cell persists.
//!
//! Documents are hand-rolled JSON (like every exporter in the workspace)
//! and round-trip **byte-identically**: `from_json(to_json(d))` re-emits
//! the exact input bytes. Two properties carry that guarantee:
//!
//! * floats are written with Rust's `{}` `Display`, the shortest string
//!   that parses back to the same `f64` — so parse → re-emit is a fixed
//!   point;
//! * parsing uses `mpisim::jsoncheck::parse_json`, whose DOM keeps
//!   numbers as raw text until a field asks for a value, so nothing is
//!   rounded on the way in.
//!
//! Byte identity is not cosmetic: the store's `gc` recomputes content
//! hashes from re-emitted documents, and figure regeneration must feed
//! the exact stored floats back into the same row builders the harness
//! uses.

use crate::config::{CellConfig, Workload};
use bench::{CellOutcome, CellSection};
use mpisim::jsoncheck::{parse_json, Json};

/// Schema tag of the run document.
pub const RUN_SCHEMA: &str = "mpistudy-run-v1";

/// One stored run: a grid cell's configuration plus its measured metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDoc {
    /// The canonical configuration string (the hashed recipe).
    pub config: String,
    /// FNV-1a hash of `config` — the store key and filename stem.
    pub hash: String,
    /// Workload name (`conv`, `conv-weak`, `lulesh`).
    pub workload: String,
    /// Machine preset name.
    pub machine: String,
    /// Fingerprint of the machine's full parameter dump; also the key of
    /// the calibration document stored under `machines/`.
    pub machine_fp: String,
    /// MPI process count.
    pub p: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Simulated wall time (makespan) in seconds.
    pub wall_secs: f64,
    /// World-communicator sections.
    pub sections: Vec<CellSection>,
}

impl RunDoc {
    /// Package a cell's outcome for the store.
    pub fn new(cfg: &CellConfig, machine_fp: &str, outcome: &CellOutcome) -> RunDoc {
        RunDoc {
            config: cfg.canonical(machine_fp),
            hash: cfg.hash(machine_fp),
            workload: cfg.workload.name().to_string(),
            machine: cfg.machine.clone(),
            machine_fp: machine_fp.to_string(),
            p: cfg.p,
            seed: cfg.seed,
            wall_secs: outcome.wall_secs,
            sections: outcome.sections.clone(),
        }
    }

    /// The measurement as the `bench` row builders consume it.
    pub fn outcome(&self) -> CellOutcome {
        CellOutcome {
            wall_secs: self.wall_secs,
            sections: self.sections.clone(),
        }
    }

    /// Steps parameter recovered from the canonical config string, if the
    /// workload has one.
    pub fn steps(&self) -> Option<usize> {
        config_field(&self.config, "steps")
    }

    /// `rows_per_rank` recovered from the canonical config string.
    pub fn rows_per_rank(&self) -> Option<usize> {
        config_field(&self.config, "rows_per_rank")
    }

    /// Serialize (one line, trailing newline).
    pub fn to_json(&self) -> String {
        let sections: Vec<String> = self
            .sections
            .iter()
            .map(|s| {
                format!(
                    "{{\"label\": {}, \"participants\": {}, \"total_own_secs\": {}, \
                     \"total_excl_secs\": {}, \"avg_per_rank_secs\": {}}}",
                    json_str(&s.label),
                    s.participants,
                    s.total_own_secs,
                    s.total_excl_secs,
                    s.avg_per_rank_secs,
                )
            })
            .collect();
        format!(
            "{{\"schema\": \"{RUN_SCHEMA}\", \"config\": {}, \"hash\": \"{}\", \
             \"workload\": \"{}\", \"machine\": {}, \"machine_fp\": \"{}\", \
             \"p\": {}, \"seed\": {}, \"wall_secs\": {}, \"sections\": [{}]}}\n",
            json_str(&self.config),
            self.hash,
            self.workload,
            json_str(&self.machine),
            self.machine_fp,
            self.p,
            self.seed,
            self.wall_secs,
            sections.join(", "),
        )
    }

    /// Parse a stored document (jsoncheck-validated; schema-checked).
    pub fn from_json(text: &str) -> Result<RunDoc, String> {
        let dom = parse_json(text).map_err(|off| format!("invalid JSON at byte {off}"))?;
        let schema = field_str(&dom, "schema")?;
        if schema != RUN_SCHEMA {
            return Err(format!("schema '{schema}', expected '{RUN_SCHEMA}'"));
        }
        let sections = dom
            .get("sections")
            .and_then(Json::as_arr)
            .ok_or("missing sections array")?
            .iter()
            .map(|s| {
                Ok(CellSection {
                    label: field_str(s, "label")?.to_string(),
                    participants: field_usize(s, "participants")?,
                    total_own_secs: field_f64(s, "total_own_secs")?,
                    total_excl_secs: field_f64(s, "total_excl_secs")?,
                    avg_per_rank_secs: field_f64(s, "avg_per_rank_secs")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RunDoc {
            config: field_str(&dom, "config")?.to_string(),
            hash: field_str(&dom, "hash")?.to_string(),
            workload: field_str(&dom, "workload")?.to_string(),
            machine: field_str(&dom, "machine")?.to_string(),
            machine_fp: field_str(&dom, "machine_fp")?.to_string(),
            p: field_usize(&dom, "p")?,
            seed: dom
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("missing seed")?,
            wall_secs: field_f64(&dom, "wall_secs")?,
            sections,
        })
    }

    /// Recompute the content hash from the *document's own* config string
    /// — `gc` compares this against the filename to detect corruption.
    pub fn recomputed_hash(&self) -> String {
        mpi_sections::fasthash::fnv1a_hex(&self.config)
    }

    /// The workload parsed back from the stored name + config fields.
    pub fn workload_enum(&self) -> Option<Workload> {
        match self.workload.as_str() {
            "conv" => Some(Workload::Conv {
                steps: self.steps()?,
            }),
            "conv-weak" => Some(Workload::ConvWeak {
                rows_per_rank: self.rows_per_rank()?,
                steps: self.steps()?,
            }),
            "lulesh" => Some(Workload::Lulesh {
                s: config_field(&self.config, "s")?,
                iters: config_field(&self.config, "iters")?,
                threads: config_field(&self.config, "threads")?,
            }),
            _ => None,
        }
    }
}

/// Pull a `key=value` numeric field out of a canonical config string.
fn config_field(config: &str, key: &str) -> Option<usize> {
    config.split_whitespace().find_map(|pair| {
        pair.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .and_then(|v| v.parse().ok())
    })
}

fn field_str<'a>(dom: &'a Json, key: &str) -> Result<&'a str, String> {
    dom.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn field_usize(dom: &Json, key: &str) -> Result<usize, String> {
    dom.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn field_f64(dom: &Json, key: &str) -> Result<f64, String> {
    dom.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field '{key}'"))
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::jsoncheck::assert_json;

    fn sample() -> RunDoc {
        let cfg = CellConfig {
            workload: Workload::Conv { steps: 5 },
            machine: "nehalem_cluster".into(),
            p: 4,
            seed: 1,
        };
        let machine = machine::presets::nehalem_cluster();
        let fp = crate::config::machine_fingerprint(&machine);
        let outcome = bench::conv_cell(4, 5, &machine, 1);
        RunDoc::new(&cfg, &fp, &outcome)
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        // The satellite acceptance test: parse a stored metrics document,
        // re-emit it, and the bytes must match exactly — floats included.
        let doc = sample();
        let json = doc.to_json();
        assert_json(&json, "run document");
        let parsed = RunDoc::from_json(&json).expect("parse back");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_json(), json, "re-emitted bytes differ");
    }

    #[test]
    fn hash_matches_filename_contract() {
        let doc = sample();
        assert_eq!(doc.recomputed_hash(), doc.hash);
    }

    #[test]
    fn config_fields_recover_parameters() {
        let doc = sample();
        assert_eq!(doc.steps(), Some(5));
        assert_eq!(doc.rows_per_rank(), None);
        assert_eq!(doc.workload_enum(), Some(Workload::Conv { steps: 5 }));
    }

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        assert!(RunDoc::from_json("{\"schema\": \"other-v1\"}").is_err());
        assert!(RunDoc::from_json("not json").is_err());
        assert!(RunDoc::from_json("{\"schema\": \"mpistudy-run-v1\"}").is_err());
    }
}
