//! The content-addressed on-disk run store.
//!
//! Layout under the store root:
//!
//! ```text
//! runs/<16-hex-fnv1a>.json       one RunDoc per simulated grid cell
//! machines/<16-hex-fnv1a>.json   one calibration document per machine
//! ```
//!
//! The filename stem *is* the content key (the FNV-1a hash of the run's
//! canonical config string, or of the machine's parameter dump), which
//! gives the store three properties for free: inserts are idempotent
//! (same config → same path), lookups are a single `stat`, and integrity
//! is checkable offline — [`RunStore::gc`] re-parses every document and
//! compares its recomputed hash against its filename.
//!
//! Writes go through a temp file + atomic rename so a crashed sweep never
//! leaves a half-written document behind a valid key.

use crate::doc::RunDoc;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Handle to a store root (directories created on open).
#[derive(Debug, Clone)]
pub struct RunStore {
    root: PathBuf,
}

/// The verdict of one integrity sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Documents that parsed and whose hash matches their filename.
    pub intact: usize,
    /// Files removed: unparsable, wrong schema, or hash/filename mismatch.
    pub removed: Vec<PathBuf>,
    /// Leftover temp files from interrupted writes, removed.
    pub stale_tmp: usize,
}

impl RunStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<RunStore> {
        let root = root.into();
        fs::create_dir_all(root.join("runs"))?;
        fs::create_dir_all(root.join("machines"))?;
        Ok(RunStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn run_path(&self, hash: &str) -> PathBuf {
        self.root.join("runs").join(format!("{hash}.json"))
    }

    fn machine_path(&self, fp: &str) -> PathBuf {
        self.root.join("machines").join(format!("{fp}.json"))
    }

    /// Is a run with this config hash already stored?
    pub fn contains(&self, hash: &str) -> bool {
        self.run_path(hash).is_file()
    }

    /// Load a stored run by hash.
    pub fn load(&self, hash: &str) -> Option<RunDoc> {
        let text = fs::read_to_string(self.run_path(hash)).ok()?;
        RunDoc::from_json(&text).ok()
    }

    /// Persist a run document under its own hash (atomic; idempotent).
    pub fn insert(&self, doc: &RunDoc) -> std::io::Result<()> {
        write_atomic(&self.run_path(&doc.hash), doc.to_json().as_bytes())
    }

    /// Is this machine's calibration already stored?
    pub fn contains_machine(&self, fp: &str) -> bool {
        self.machine_path(fp).is_file()
    }

    /// Persist a machine calibration document under its fingerprint.
    pub fn insert_machine(&self, fp: &str, json: &str) -> std::io::Result<()> {
        write_atomic(&self.machine_path(fp), json.as_bytes())
    }

    /// All stored runs, in filename (= hash) order.
    pub fn iter(&self) -> Vec<RunDoc> {
        let mut names: Vec<PathBuf> = match fs::read_dir(self.root.join("runs")) {
            Ok(rd) => rd
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|e| e == "json"))
                .collect(),
            Err(_) => return Vec::new(),
        };
        names.sort();
        names
            .iter()
            .filter_map(|p| fs::read_to_string(p).ok())
            .filter_map(|text| RunDoc::from_json(&text).ok())
            .collect()
    }

    /// Integrity sweep: every run document must parse and its recomputed
    /// content hash must equal its filename stem; violators are removed
    /// (the sweep can always re-simulate them). Stale temp files from
    /// interrupted writes are cleaned up too.
    pub fn gc(&self) -> std::io::Result<GcReport> {
        let mut report = GcReport::default();
        for dir in ["runs", "machines"] {
            for entry in fs::read_dir(self.root.join(dir))? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "tmp") {
                    fs::remove_file(&path)?;
                    report.stale_tmp += 1;
                }
            }
        }
        for entry in fs::read_dir(self.root.join("runs"))? {
            let path = entry?.path();
            if path.extension().is_none_or(|e| e != "json") {
                continue;
            }
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string();
            let ok = fs::read_to_string(&path)
                .ok()
                .and_then(|text| RunDoc::from_json(&text).ok())
                .is_some_and(|doc| doc.recomputed_hash() == stem && doc.hash == stem);
            if ok {
                report.intact += 1;
            } else {
                fs::remove_file(&path)?;
                report.removed.push(path);
            }
        }
        Ok(report)
    }
}

/// Write `bytes` to `path` via a temp file + rename in the same
/// directory. The temp name carries a process-unique counter: two workers
/// racing to store the same key (both missed the `contains` check) must
/// not share a temp file, or the loser's rename fails after the winner's
/// rename consumed it. Both renames landing is fine — same key, same
/// content.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("{n}.tmp"));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{machine_fingerprint, CellConfig, Workload};

    fn tmp_store(tag: &str) -> RunStore {
        let dir =
            std::env::temp_dir().join(format!("mpistudy-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }

    fn sample_doc(p: usize, seed: u64) -> RunDoc {
        let cfg = CellConfig {
            workload: Workload::Conv { steps: 3 },
            machine: "ideal".into(),
            p,
            seed,
        };
        let m = machine::presets::ideal();
        let fp = machine_fingerprint(&m);
        let outcome = bench::conv_cell(p, 3, &m, seed);
        RunDoc::new(&cfg, &fp, &outcome)
    }

    #[test]
    fn insert_load_roundtrip_and_idempotence() {
        let store = tmp_store("roundtrip");
        let doc = sample_doc(2, 0);
        assert!(!store.contains(&doc.hash));
        store.insert(&doc).unwrap();
        assert!(store.contains(&doc.hash));
        assert_eq!(store.load(&doc.hash).unwrap(), doc);
        store.insert(&doc).unwrap(); // same key, same content: fine
        assert_eq!(store.iter().len(), 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_removes_corruption_and_keeps_the_intact() {
        let store = tmp_store("gc");
        let doc = sample_doc(2, 1);
        store.insert(&doc).unwrap();
        // A document filed under the wrong name (content/key mismatch).
        fs::write(
            store.root().join("runs").join("0000000000000000.json"),
            doc.to_json(),
        )
        .unwrap();
        // Garbage bytes behind a json extension, and an interrupted write.
        fs::write(
            store.root().join("runs").join("ffffffffffffffff.json"),
            "{oops",
        )
        .unwrap();
        fs::write(store.root().join("runs").join("abc.tmp"), "partial").unwrap();
        let report = store.gc().unwrap();
        assert_eq!(report.intact, 1);
        assert_eq!(report.removed.len(), 2);
        assert_eq!(report.stale_tmp, 1);
        assert!(store.contains(&doc.hash));
        // A second sweep finds nothing left to clean.
        assert_eq!(
            store.gc().unwrap(),
            GcReport {
                intact: 1,
                ..Default::default()
            }
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn machine_documents_store_under_fingerprint() {
        let store = tmp_store("machines");
        let m = machine::presets::ideal();
        let fp = machine_fingerprint(&m);
        assert!(!store.contains_machine(&fp));
        store
            .insert_machine(&fp, &machine::calibration::cached(&m).to_json())
            .unwrap();
        assert!(store.contains_machine(&fp));
        let _ = fs::remove_dir_all(store.root());
    }
}
