//! End-to-end analyzer tests: each diagnostic class seeded through the
//! real runtime, plus the non-intrusiveness property (clean programs are
//! byte-identical with and without the analyzer attached).

use mpicheck::Analyzer;
use mpisim::diag::DiagnosticKind;
use mpisim::{RunReport, Severity, Src, TagSel, WorldBuilder};
use std::sync::Arc;

// ----------------------------------------------------------------------
// Deadlock
// ----------------------------------------------------------------------

#[test]
fn recv_recv_cross_wait_is_diagnosed() {
    let err = WorldBuilder::new(2)
        .tool(Analyzer::new())
        .run(|p| {
            let world = p.world();
            let peer = 1 - p.world_rank();
            // Both ranks receive before sending: classic cross-wait.
            let _ = world.recv::<u32>(p, Src::Rank(peer), TagSel::Is(0));
            world.send(p, peer, 0, &[1u32]);
        })
        .unwrap_err();
    let diags = err.diagnostics();
    assert_eq!(diags.len(), 1, "{err}");
    let d = &diags[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.ranks, vec![0, 1]);
    match &d.kind {
        DiagnosticKind::Deadlock { cycle } => {
            assert_eq!(cycle.len(), 2, "{err}");
            assert!(cycle.iter().all(|s| s.call == "MPI_Recv"), "{err}");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn rank_skipping_a_barrier_is_diagnosed() {
    let err = WorldBuilder::new(3)
        .tool(Analyzer::new())
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 2 {
                // Skips the barrier and waits on rank 0 instead — but rank
                // 0 cannot send until the barrier completes, which needs
                // rank 2. A knot.
                let _ = world.recv::<u32>(p, Src::Rank(0), TagSel::Any);
            } else {
                world.barrier(p);
                world.send(p, 2, 0, &[7u32]);
            }
        })
        .unwrap_err();
    let diags = err.diagnostics();
    assert_eq!(diags.len(), 1, "{err}");
    let d = &diags[0];
    assert!(matches!(d.kind, DiagnosticKind::Deadlock { .. }), "{err}");
    // The barrier waiter and the skipping receiver are both in the knot.
    assert!(d.ranks.contains(&0), "{err}");
    assert!(d.ranks.contains(&2), "{err}");
    match &d.kind {
        DiagnosticKind::Deadlock { cycle } => {
            assert!(
                cycle.iter().any(|s| s.call == "barrier"),
                "cycle should name the barrier site: {err}"
            );
            assert!(
                cycle.iter().any(|s| s.call == "MPI_Recv"),
                "cycle should name the blocked receive: {err}"
            );
        }
        _ => unreachable!(),
    }
}

#[test]
fn receive_from_finalized_rank_aborts_instead_of_hanging() {
    let err = WorldBuilder::new(2)
        .tool(Analyzer::new())
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 1 {
                // Rank 0 exits immediately; without the analyzer this
                // receive would hang the whole run.
                let _ = world.recv::<u32>(p, Src::Rank(0), TagSel::Any);
            }
        })
        .unwrap_err();
    let diags = err.diagnostics();
    assert_eq!(diags.len(), 1, "{err}");
    assert_eq!(diags[0].ranks, vec![1]);
    assert!(
        matches!(diags[0].kind, DiagnosticKind::Deadlock { .. }),
        "{err}"
    );
}

// ----------------------------------------------------------------------
// Collective divergence
// ----------------------------------------------------------------------

#[test]
fn mismatched_collective_kinds_are_diagnosed() {
    let err = WorldBuilder::new(2)
        .tool(Analyzer::new())
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                world.barrier(p);
            } else {
                let _ = world.allreduce_sum_f64(p, 1.0);
            }
        })
        .unwrap_err();
    let diags = err.diagnostics();
    assert_eq!(diags.len(), 1, "{err}");
    match &diags[0].kind {
        DiagnosticKind::CollectiveDivergence {
            position,
            expected,
            observed,
        } => {
            assert_eq!(*position, 0);
            let mut ops = [expected.as_str(), observed.as_str()];
            ops.sort_unstable();
            assert_eq!(ops, ["allreduce", "barrier"], "{err}");
        }
        other => panic!("expected CollectiveDivergence, got {other:?}"),
    }
}

#[test]
fn mismatched_roots_are_diagnosed() {
    // Same collective kind, different roots: invisible to the rendezvous
    // backstop (the op labels agree), caught only by the analyzer.
    let err = WorldBuilder::new(2)
        .tool(Analyzer::new())
        .run(|p| {
            let world = p.world();
            let root = p.world_rank(); // each rank thinks IT is the root
            let data = Some(vec![root as u64]);
            let _ = world.bcast(p, root, data);
        })
        .unwrap_err();
    let diags = err.diagnostics();
    assert_eq!(diags.len(), 1, "{err}");
    match &diags[0].kind {
        DiagnosticKind::CollectiveDivergence {
            expected, observed, ..
        } => {
            let mut roots = [expected.as_str(), observed.as_str()];
            roots.sort_unstable();
            assert_eq!(roots, ["bcast(root=0)", "bcast(root=1)"], "{err}");
        }
        other => panic!("expected CollectiveDivergence, got {other:?}"),
    }
}

// ----------------------------------------------------------------------
// Wildcard message race
// ----------------------------------------------------------------------

#[test]
fn wildcard_receive_race_is_reported_as_warning() {
    let analyzer = Analyzer::new();
    let report = WorldBuilder::new(3)
        .tool(analyzer.clone())
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                world.barrier(p);
                // Both messages are in flight by now: the wildcard match
                // order is a coin flip on a real MPI.
                let a = world.recv::<u32>(p, Src::Any, TagSel::Is(7));
                let b = world.recv::<u32>(p, Src::Any, TagSel::Is(7));
                a.data[0] + b.data[0]
            } else {
                world.send(p, 0, 7, &[p.world_rank() as u32]);
                world.barrier(p);
                0
            }
        })
        .unwrap();
    // The run completes (a race is a hazard, not a fault) ...
    assert_eq!(report.results[0], 3);
    // ... but the analyzer flagged it.
    let warnings = analyzer.diagnostics();
    assert_eq!(warnings.len(), 1, "one race, reported once");
    let d = &warnings[0];
    assert_eq!(d.severity, Severity::Warn);
    match &d.kind {
        DiagnosticKind::MessageRace {
            receiver,
            candidates,
        } => {
            assert_eq!(*receiver, 0);
            assert_eq!(candidates.as_slice(), &[(1, 7), (2, 7)]);
        }
        other => panic!("expected MessageRace, got {other:?}"),
    }
}

#[test]
fn single_candidate_wildcard_is_not_a_race() {
    let analyzer = Analyzer::new();
    WorldBuilder::new(2)
        .tool(analyzer.clone())
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                let _ = world.recv::<u32>(p, Src::Any, TagSel::Any);
            } else {
                world.send(p, 0, 1, &[9u32]);
            }
        })
        .unwrap();
    assert!(analyzer.diagnostics().is_empty());
}

#[test]
fn distinct_tags_from_one_sender_are_not_a_race() {
    // Non-overtaking order is deterministic for a single (source, comm)
    // pair, so two in-flight messages from the same sender are fine.
    let analyzer = Analyzer::new();
    WorldBuilder::new(2)
        .tool(analyzer.clone())
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                world.barrier(p);
                let _ = world.recv::<u32>(p, Src::Any, TagSel::Any);
                let _ = world.recv::<u32>(p, Src::Any, TagSel::Any);
            } else {
                world.send(p, 0, 1, &[1u32]);
                world.send(p, 0, 2, &[2u32]);
                world.barrier(p);
            }
        })
        .unwrap();
    assert!(analyzer.diagnostics().is_empty());
}

// ----------------------------------------------------------------------
// Section misuse surfaces through the same channel
// ----------------------------------------------------------------------

#[test]
fn section_misuse_is_diagnosed_alongside_the_analyzer() {
    use mpi_sections::{SectionRuntime, VerifyMode};
    let sections = SectionRuntime::new(VerifyMode::Active);
    let s = sections.clone();
    let err = WorldBuilder::new(1)
        .tool(sections)
        .tool(Analyzer::new())
        .run(move |p| {
            let world = p.world();
            s.enter(p, &world, "outer");
            s.enter(p, &world, "inner");
            s.exit(p, &world, "outer"); // imperfect nesting
        })
        .unwrap_err();
    let diags = err.diagnostics();
    assert_eq!(diags.len(), 1, "{err}");
    assert!(
        matches!(diags[0].kind, DiagnosticKind::SectionMisuse { .. }),
        "{err}"
    );
    assert!(err.to_string().contains("imperfect nesting"), "{err}");
}

// ----------------------------------------------------------------------
// Non-intrusiveness
// ----------------------------------------------------------------------

/// One step of a deterministic, analyzer-clean SPMD program.
#[derive(Clone, Debug)]
enum Op {
    Compute(u8),
    Barrier,
    Allreduce,
    Bcast(u8),
    Ring(u8),
}

fn run_program(
    nranks: usize,
    seed: u64,
    ops: &[Op],
    analyzer: Option<Arc<Analyzer>>,
) -> RunReport<f64> {
    let mut builder = WorldBuilder::new(nranks).seed(seed);
    if let Some(a) = analyzer {
        builder = builder.tool(a);
    }
    let ops = ops.to_vec();
    builder
        .run(move |p| {
            let world = p.world();
            let mut acc = 0.0f64;
            for op in &ops {
                match op {
                    Op::Compute(us) => p.advance_secs(f64::from(*us) * 1e-6),
                    Op::Barrier => world.barrier(p),
                    Op::Allreduce => {
                        acc += world.allreduce_sum_f64(p, p.world_rank() as f64 + 1.0);
                    }
                    Op::Bcast(root) => {
                        let root = *root as usize % world.size();
                        let data = (world.rank() == root).then(|| vec![acc + 1.0]);
                        acc += world.bcast(p, root, data)[0];
                    }
                    Op::Ring(tag) => {
                        let n = world.size();
                        let dest = (world.rank() + 1) % n;
                        let src = (world.rank() + n - 1) % n;
                        let tag = i32::from(*tag);
                        let got = world.sendrecv(
                            p,
                            dest,
                            tag,
                            &[acc + 1.0],
                            Src::Rank(src),
                            TagSel::Is(tag),
                        );
                        acc += got.data[0];
                    }
                }
            }
            acc
        })
        .map_err(|e| format!("clean program must not fail: {e}"))
        .unwrap()
}

fn assert_untouched(nranks: usize, seed: u64, ops: &[Op]) {
    let plain = run_program(nranks, seed, ops, None);
    let analyzer = Analyzer::new();
    let checked = run_program(nranks, seed, ops, Some(analyzer.clone()));
    assert!(analyzer.diagnostics().is_empty(), "clean program flagged");
    assert_eq!(plain.results, checked.results);
    assert_eq!(plain.final_times, checked.final_times);
    assert_eq!(plain.makespan, checked.makespan);
}

#[test]
fn analyzer_does_not_perturb_a_mixed_program() {
    let ops = [
        Op::Compute(13),
        Op::Ring(3),
        Op::Barrier,
        Op::Bcast(1),
        Op::Allreduce,
        Op::Ring(5),
        Op::Compute(40),
        Op::Allreduce,
    ];
    assert_untouched(4, 42, &ops);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    fn op_strategy() -> BoxedStrategy<Op> {
        prop_oneof![
            (0u8..50).prop_map(Op::Compute),
            Just(Op::Barrier),
            Just(Op::Allreduce),
            (0u8..8).prop_map(Op::Bcast),
            (0u8..10).prop_map(Op::Ring),
        ]
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_clean_programs_are_untouched(
            ops in proptest::collection::vec(op_strategy(), 1..10),
            nranks in 2usize..5,
            seed in any::<u64>(),
        ) {
            let plain = run_program(nranks, seed, &ops, None);
            let analyzer = Analyzer::new();
            let checked = run_program(nranks, seed, &ops, Some(analyzer.clone()));
            prop_assert!(analyzer.diagnostics().is_empty());
            prop_assert_eq!(&plain.results, &checked.results);
            prop_assert_eq!(&plain.final_times, &checked.final_times);
            prop_assert_eq!(plain.makespan, checked.makespan);
        }
    }
}
