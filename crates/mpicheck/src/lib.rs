//! # mpicheck — correctness analysis for the virtual MPI runtime
//!
//! An [`Analyzer`] is an [`mpisim::Tool`]: it consumes the typed
//! [`MpiEvent`] stream the runtime raises on every rank's thread and turns
//! the classic MPI correctness hazards into structured
//! [`mpisim::Diagnostic`]s instead of opaque panics or silent hangs:
//!
//! * **Deadlock** — a wait-for graph over pending receives and collective
//!   rendezvous, re-checked incrementally each time a rank is about to
//!   block. A recv/recv cross-wait, a rank skipping a barrier, or a
//!   receive from a finalized rank is reported with the full cycle of
//!   blocked call sites *before* the world hangs.
//! * **Collective divergence** — per-communicator logs of collective
//!   operations (kind and root); the first rank to disagree with the
//!   communicator's agreed sequence aborts with the divergence position,
//!   the expected operation, and the observed one.
//! * **Message race** — a wildcard ([`Src::Any`]) receive that has more
//!   than one simultaneously matching in-flight sender is nondeterministic
//!   on a real MPI; the competing `(rank, tag)` pairs are reported as a
//!   warning (the run still completes).
//!
//! The fourth diagnostic class, **section misuse**, is produced by the
//! `mpi-sections` runtime itself (imperfect nesting, cross-rank order
//! violations) through the same [`mpisim::diag`] channel; all four surface
//! as [`mpisim::RunError::Diagnosed`].
//!
//! The analyzer only observes: it never advances virtual time, so a clean
//! program produces bit-identical [`mpisim::RunReport`]s with and without
//! the tool attached (property-tested in this crate).
//!
//! ## Example
//!
//! ```
//! use mpicheck::Analyzer;
//! use mpisim::{RunError, Src, TagSel, WorldBuilder};
//!
//! let analyzer = Analyzer::new();
//! let err = WorldBuilder::new(2)
//!     .tool(analyzer)
//!     .run(|p| {
//!         let world = p.world();
//!         // Both ranks receive first: a textbook cross-wait.
//!         let peer = 1 - p.world_rank();
//!         let _ = world.recv::<u8>(p, Src::Rank(peer), TagSel::Any);
//!         world.send(p, peer, 0, &[1u8]);
//!     })
//!     .unwrap_err();
//! assert!(matches!(err, RunError::Diagnosed(_)));
//! ```

use mpisim::diag::{self, BlockedSite, Diagnostic, DiagnosticKind, Severity};
use mpisim::{CommId, MpiEvent, Src, TagSel, Tool};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// What a rank is currently blocked on (if anything).
#[derive(Clone)]
enum Blocked {
    /// Waiting in a blocking receive.
    Recv {
        comm: CommId,
        src: Src,
        tag: TagSel,
        /// Local rank -> world rank for the receive's communicator.
        members: Arc<Vec<usize>>,
    },
    /// Waiting at a collective rendezvous.
    Collective {
        op: &'static str,
        comm: CommId,
        /// This rank's per-communicator collective round index.
        round: u64,
        members: Arc<Vec<usize>>,
    },
}

/// Per-rank analysis state.
#[derive(Clone, Default)]
struct RankState {
    blocked: Option<Blocked>,
    /// Rank has raised `Finalize`: it will never send or synchronize again.
    finished: bool,
    /// Collectives entered so far, per communicator.
    rounds: HashMap<CommId, u64>,
}

/// A message known to be in flight (sent, not yet consumed).
struct InFlight {
    comm: CommId,
    src_world: usize,
    dst_world: usize,
    tag: i32,
}

/// One collective operation as logged for divergence checking.
#[derive(Clone, PartialEq, Eq)]
struct CollOp {
    op: &'static str,
    root: Option<usize>,
}

impl CollOp {
    fn describe(&self) -> String {
        match self.root {
            Some(root) => format!("{}(root={root})", self.op),
            None => self.op.to_string(),
        }
    }
}

/// Shared verification log of one communicator's collective sequence.
#[derive(Default)]
struct CollLog {
    /// The agreed sequence (grown by the first rank to perform each step).
    log: Vec<CollOp>,
    /// How far each world rank has progressed through the log.
    position: HashMap<usize, usize>,
}

#[derive(Default)]
struct CheckState {
    nranks: usize,
    ranks: HashMap<usize, RankState>,
    /// In-flight messages keyed by global sequence number.
    inflight: HashMap<u64, InFlight>,
    /// Collective-sequence logs per communicator.
    coll_logs: HashMap<CommId, CollLog>,
    /// Per communicator: number of collective rounds some rank has already
    /// completed (guards against stale "still blocked" states of peers
    /// that finished the rendezvous but have not yet raised their exit).
    completed_rounds: HashMap<CommId, u64>,
    /// Non-fatal findings (message races), deduplicated.
    warnings: Vec<Diagnostic>,
}

/// The correctness analyzer. Attach with
/// [`WorldBuilder::tool`](mpisim::WorldBuilder::tool); fatal findings abort
/// the run as [`mpisim::RunError::Diagnosed`], warnings are collected and
/// available from [`Analyzer::diagnostics`] after the run.
#[derive(Default)]
pub struct Analyzer {
    state: Mutex<CheckState>,
}

impl Analyzer {
    /// A fresh analyzer, ready to attach to one world.
    pub fn new() -> Arc<Analyzer> {
        Arc::new(Analyzer::default())
    }

    /// The non-fatal findings collected so far (deduplicated, in discovery
    /// order). Fatal findings are not listed here — they abort the run and
    /// travel in [`mpisim::RunError::Diagnosed`].
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.state.lock().warnings.clone()
    }

    // ------------------------------------------------------------------
    // Collective-sequence divergence
    // ------------------------------------------------------------------

    /// Record `rank`'s next collective on `comm`; on disagreement with the
    /// communicator's agreed sequence, return the fatal finding.
    fn check_divergence(
        st: &mut CheckState,
        rank: usize,
        comm: CommId,
        entry: CollOp,
    ) -> Option<Diagnostic> {
        let log = st.coll_logs.entry(comm).or_default();
        let pos = log.position.entry(rank).or_insert(0);
        let result = if *pos == log.log.len() {
            log.log.push(entry);
            None
        } else {
            let expected = log.log[*pos].clone();
            if expected == entry {
                None
            } else {
                Some(Diagnostic {
                    message: format!(
                        "collective divergence on communicator {}: rank {rank} \
                         performed {} but the communicator's sequence has {} \
                         at position {pos}",
                        comm.0,
                        entry.describe(),
                        expected.describe()
                    ),
                    kind: DiagnosticKind::CollectiveDivergence {
                        position: *pos,
                        expected: expected.describe(),
                        observed: entry.describe(),
                    },
                    severity: Severity::Error,
                    ranks: vec![rank],
                    comm: Some(comm),
                })
            }
        };
        *pos += 1;
        result
    }

    // ------------------------------------------------------------------
    // Wait-for-graph deadlock detection
    // ------------------------------------------------------------------

    /// Greatest-fixpoint release analysis. Start by assuming every blocked
    /// rank is stuck; release any rank whose wait could still be satisfied:
    ///
    /// * a blocked receive is releasable if a matching message is in
    ///   flight, or any potential sender is released (an unblocked,
    ///   unfinished rank might still send);
    /// * a collective is releasable if some rank already completed this
    ///   round (the rendezvous fired; the "blocked" states are stale), or
    ///   every member has arrived at the same round or is released.
    ///
    /// Whatever remains blocked at the fixpoint can never make progress.
    fn find_deadlock(st: &CheckState) -> Option<Vec<usize>> {
        let blocked: HashMap<usize, &Blocked> = st
            .ranks
            .iter()
            .filter_map(|(&r, s)| s.blocked.as_ref().map(|b| (r, b)))
            .collect();
        if blocked.is_empty() {
            return None;
        }
        // Released = "may still unblock others". Active (unblocked,
        // unfinished) ranks qualify; finished ranks do not — they will
        // never send or enter a collective again.
        let mut released: HashSet<usize> = (0..st.nranks)
            .filter(|r| {
                !blocked.contains_key(r) && !st.ranks.get(r).map(|s| s.finished).unwrap_or(false)
            })
            .collect();
        let arrived_at = |rank: usize, comm: CommId, round: u64| -> bool {
            matches!(
                blocked.get(&rank),
                Some(Blocked::Collective {
                    comm: c, round: g, ..
                }) if *c == comm && *g == round
            )
        };
        loop {
            let mut changed = false;
            for (&rank, b) in &blocked {
                if released.contains(&rank) {
                    continue;
                }
                let free = match b {
                    Blocked::Recv {
                        comm,
                        src,
                        tag,
                        members,
                    } => {
                        let matching_inflight = st.inflight.values().any(|m| {
                            m.dst_world == rank
                                && m.comm == *comm
                                && tag_matches(*tag, m.tag)
                                && src_matches(*src, members, m.src_world)
                        });
                        matching_inflight
                            || potential_senders(*src, members, rank).any(|s| released.contains(&s))
                    }
                    Blocked::Collective {
                        comm,
                        round,
                        members,
                        ..
                    } => {
                        *round < st.completed_rounds.get(comm).copied().unwrap_or(0)
                            || members.iter().all(|&m| {
                                m == rank || released.contains(&m) || arrived_at(m, *comm, *round)
                            })
                    }
                };
                if free {
                    released.insert(rank);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut stuck: Vec<usize> = blocked
            .keys()
            .copied()
            .filter(|r| !released.contains(r))
            .collect();
        if stuck.is_empty() {
            return None;
        }
        stuck.sort_unstable();
        Some(stuck)
    }

    /// Build the deadlock diagnostic: walk the wait edges from the lowest
    /// stuck rank to present the cycle, then append any stuck ranks the
    /// walk did not reach.
    fn deadlock_diagnostic(st: &CheckState, stuck: &[usize]) -> Diagnostic {
        let stuck_set: HashSet<usize> = stuck.iter().copied().collect();
        let site_of = |rank: usize| -> BlockedSite {
            match st.ranks[&rank]
                .blocked
                .as_ref()
                .expect("stuck rank is blocked")
            {
                Blocked::Recv {
                    comm,
                    src,
                    tag,
                    members,
                } => {
                    let from = match src {
                        Src::Rank(r) => {
                            let world = members[*r];
                            if st.ranks.get(&world).map(|s| s.finished).unwrap_or(false) {
                                format!("a message from rank {world} (already finalized)")
                            } else {
                                format!("a message from rank {world}")
                            }
                        }
                        Src::Any => "a message from any source".to_string(),
                    };
                    let tag = match tag {
                        TagSel::Is(t) => format!(" with tag {t}"),
                        TagSel::Any => String::new(),
                    };
                    BlockedSite {
                        rank,
                        call: "MPI_Recv".to_string(),
                        waiting_for: format!("{from}{tag} on communicator {}", comm.0),
                    }
                }
                Blocked::Collective {
                    op, comm, members, ..
                } => {
                    let missing: Vec<String> = members
                        .iter()
                        .filter(|m| {
                            !matches!(
                                st.ranks.get(m).and_then(|s| s.blocked.as_ref()),
                                Some(Blocked::Collective { comm: c, .. }) if c == comm
                            )
                        })
                        .map(ToString::to_string)
                        .collect();
                    BlockedSite {
                        rank,
                        call: (*op).to_string(),
                        waiting_for: format!(
                            "rank{} {} to enter the collective on communicator {}",
                            if missing.len() == 1 { "" } else { "s" },
                            missing.join(", "),
                            comm.0
                        ),
                    }
                }
            }
        };
        // One wait edge per stuck rank, for the cycle walk.
        let next_of = |rank: usize| -> Option<usize> {
            match st.ranks[&rank].blocked.as_ref()? {
                Blocked::Recv { src, members, .. } => match src {
                    Src::Rank(r) => Some(members[*r]).filter(|w| stuck_set.contains(w)),
                    Src::Any => potential_senders(Src::Any, members, rank)
                        .filter(|s| stuck_set.contains(s))
                        .min(),
                },
                Blocked::Collective {
                    comm,
                    round,
                    members,
                    ..
                } => members
                    .iter()
                    .copied()
                    .filter(|&m| {
                        m != rank
                            && stuck_set.contains(&m)
                            && !matches!(
                                st.ranks.get(&m).and_then(|s| s.blocked.as_ref()),
                                Some(Blocked::Collective { comm: c, round: g, .. })
                                    if c == comm && g == round
                            )
                    })
                    .min(),
            }
        };
        let mut cycle = Vec::new();
        let mut seen = HashSet::new();
        let mut cursor = stuck[0];
        while seen.insert(cursor) {
            cycle.push(site_of(cursor));
            match next_of(cursor) {
                Some(next) => cursor = next,
                None => break,
            }
        }
        for &rank in stuck {
            if !seen.contains(&rank) {
                cycle.push(site_of(rank));
            }
        }
        let ranks_list: Vec<String> = stuck.iter().map(ToString::to_string).collect();
        Diagnostic {
            message: format!(
                "deadlock: rank{} {} cannot make progress (wait-for cycle)",
                if stuck.len() == 1 { "" } else { "s" },
                ranks_list.join(", ")
            ),
            kind: DiagnosticKind::Deadlock { cycle },
            severity: Severity::Error,
            ranks: stuck.to_vec(),
            comm: None,
        }
    }

    /// Run the deadlock check; returns the fatal finding if any rank set is
    /// permanently stuck.
    fn check_deadlock(st: &CheckState) -> Option<Diagnostic> {
        Self::find_deadlock(st).map(|stuck| Self::deadlock_diagnostic(st, &stuck))
    }
}

fn tag_matches(sel: TagSel, tag: i32) -> bool {
    match sel {
        TagSel::Any => true,
        TagSel::Is(t) => t == tag,
    }
}

fn src_matches(sel: Src, members: &[usize], src_world: usize) -> bool {
    match sel {
        Src::Any => true,
        Src::Rank(r) => members.get(r).copied() == Some(src_world),
    }
}

/// World ranks that could still send to a receive blocked with selector
/// `src` (the receiver itself cannot satisfy its own pending receive).
fn potential_senders(
    src: Src,
    members: &Arc<Vec<usize>>,
    receiver: usize,
) -> impl Iterator<Item = usize> + '_ {
    let specific = match src {
        Src::Rank(r) => Some(members.get(r).copied().unwrap_or(usize::MAX)),
        Src::Any => None,
    };
    members
        .iter()
        .copied()
        .filter(move |&m| m != receiver && specific.map(|s| s == m).unwrap_or(true))
}

impl Tool for Analyzer {
    fn on_event(&self, world_rank: usize, event: &MpiEvent) {
        // Fatal findings are produced under the state lock but aborted
        // outside it, so peers draining the poison can still inspect state.
        let fatal: Option<Diagnostic> = {
            let mut st = self.state.lock();
            match event {
                MpiEvent::Init { size, .. } => {
                    st.nranks = (*size).max(st.nranks);
                    st.ranks.entry(world_rank).or_default();
                    None
                }
                MpiEvent::Finalize { .. } => {
                    let rank = st.ranks.entry(world_rank).or_default();
                    rank.blocked = None;
                    rank.finished = true;
                    // A peer stuck receiving from this rank will now never
                    // be served: re-check so the run aborts instead of
                    // hanging on the join.
                    Self::check_deadlock(&st)
                }
                MpiEvent::SendEnqueued {
                    comm,
                    dst_world,
                    tag,
                    seq,
                    ..
                } => {
                    st.inflight.insert(
                        *seq,
                        InFlight {
                            comm: *comm,
                            src_world: world_rank,
                            dst_world: *dst_world,
                            tag: *tag,
                        },
                    );
                    None
                }
                MpiEvent::RecvBlocked {
                    comm,
                    src,
                    tag,
                    members,
                    ..
                } => {
                    st.ranks.entry(world_rank).or_default().blocked = Some(Blocked::Recv {
                        comm: *comm,
                        src: *src,
                        tag: *tag,
                        members: members.clone(),
                    });
                    Self::check_deadlock(&st)
                }
                MpiEvent::RecvMatched {
                    seq, candidates, ..
                } => {
                    st.inflight.remove(seq);
                    let rank = st.ranks.entry(world_rank).or_default();
                    let was_wildcard =
                        matches!(rank.blocked, Some(Blocked::Recv { src: Src::Any, .. }));
                    let comm = match &rank.blocked {
                        Some(Blocked::Recv { comm, .. }) => Some(*comm),
                        _ => None,
                    };
                    rank.blocked = None;
                    if was_wildcard {
                        // Only distinct senders can race: per-sender order is
                        // pinned by the non-overtaking rule, so several queued
                        // messages from one sender are no choice at all. Keep
                        // the earliest message per sender (what the runtime
                        // could actually match) and warn only when two or more
                        // senders compete — a single live candidate is
                        // deterministic, the verifier's "trivially refuted".
                        let mut competing: Vec<(usize, i32)> = Vec::new();
                        for &(r, t) in candidates {
                            if !competing.iter().any(|(cr, _)| *cr == r) {
                                competing.push((r, t));
                            }
                        }
                        if competing.len() > 1 {
                            competing.sort_unstable();
                            let mut ranks: Vec<usize> = competing.iter().map(|(r, _)| *r).collect();
                            ranks.push(world_rank);
                            ranks.sort_unstable();
                            ranks.dedup();
                            let warn = Diagnostic {
                                message: format!(
                                    "message race: wildcard receive on rank {world_rank} \
                                     had {} simultaneously matching senders — the \
                                     match order is nondeterministic on a real MPI",
                                    competing.len()
                                ),
                                kind: DiagnosticKind::MessageRace {
                                    receiver: world_rank,
                                    candidates: competing,
                                },
                                severity: Severity::Warn,
                                ranks,
                                comm,
                            };
                            if !st.warnings.contains(&warn) {
                                st.warnings.push(warn);
                            }
                        }
                    }
                    None
                }
                MpiEvent::CollectiveEnter {
                    op,
                    comm,
                    members,
                    root,
                    ..
                } => {
                    let divergence = Self::check_divergence(
                        &mut st,
                        world_rank,
                        *comm,
                        CollOp { op, root: *root },
                    );
                    if divergence.is_some() {
                        divergence
                    } else {
                        let rank = st.ranks.entry(world_rank).or_default();
                        let round = rank.rounds.entry(*comm).or_insert(0);
                        let this_round = *round;
                        *round += 1;
                        rank.blocked = Some(Blocked::Collective {
                            op,
                            comm: *comm,
                            round: this_round,
                            members: members.clone(),
                        });
                        Self::check_deadlock(&st)
                    }
                }
                MpiEvent::CollectiveExit { comm, .. } => {
                    let rank = st.ranks.entry(world_rank).or_default();
                    rank.blocked = None;
                    let finished_round = rank.rounds.get(comm).copied().unwrap_or(0);
                    let completed = st.completed_rounds.entry(*comm).or_insert(0);
                    *completed = (*completed).max(finished_round);
                    None
                }
                _ => None,
            }
        };
        if let Some(diagnostic) = fatal {
            diag::abort_with(vec![diagnostic]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize) -> Arc<Vec<usize>> {
        Arc::new((0..n).collect())
    }

    fn blocked_recv(comm: CommId, src: Src, n: usize) -> Option<Blocked> {
        Some(Blocked::Recv {
            comm,
            src,
            tag: TagSel::Any,
            members: members(n),
        })
    }

    fn state_of(n: usize) -> CheckState {
        let mut st = CheckState {
            nranks: n,
            ..CheckState::default()
        };
        for r in 0..n {
            st.ranks.insert(r, RankState::default());
        }
        st
    }

    #[test]
    fn fixpoint_detects_cross_wait() {
        let mut st = state_of(2);
        st.ranks.get_mut(&0).unwrap().blocked = blocked_recv(CommId::WORLD, Src::Rank(1), 2);
        st.ranks.get_mut(&1).unwrap().blocked = blocked_recv(CommId::WORLD, Src::Rank(0), 2);
        assert_eq!(Analyzer::find_deadlock(&st), Some(vec![0, 1]));
    }

    #[test]
    fn inflight_message_releases_receiver() {
        let mut st = state_of(2);
        st.ranks.get_mut(&0).unwrap().blocked = blocked_recv(CommId::WORLD, Src::Rank(1), 2);
        st.ranks.get_mut(&1).unwrap().blocked = blocked_recv(CommId::WORLD, Src::Rank(0), 2);
        st.inflight.insert(
            7,
            InFlight {
                comm: CommId::WORLD,
                src_world: 1,
                dst_world: 0,
                tag: 3,
            },
        );
        // Rank 0's receive is satisfiable, which transitively frees rank 1.
        assert_eq!(Analyzer::find_deadlock(&st), None);
    }

    #[test]
    fn active_rank_releases_wildcard_receiver() {
        let mut st = state_of(3);
        st.ranks.get_mut(&0).unwrap().blocked = blocked_recv(CommId::WORLD, Src::Any, 3);
        st.ranks.get_mut(&1).unwrap().blocked = blocked_recv(CommId::WORLD, Src::Rank(0), 3);
        // Rank 2 is computing: it may still send to rank 0's wildcard.
        assert_eq!(Analyzer::find_deadlock(&st), None);
    }

    #[test]
    fn finished_rank_cannot_release() {
        let mut st = state_of(2);
        st.ranks.get_mut(&0).unwrap().blocked = blocked_recv(CommId::WORLD, Src::Rank(1), 2);
        st.ranks.get_mut(&1).unwrap().finished = true;
        assert_eq!(Analyzer::find_deadlock(&st), Some(vec![0]));
        let d = Analyzer::deadlock_diagnostic(&st, &[0]);
        match &d.kind {
            DiagnosticKind::Deadlock { cycle } => {
                assert_eq!(cycle.len(), 1);
                assert!(cycle[0].waiting_for.contains("already finalized"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn completed_round_releases_stale_collective_state() {
        let mut st = state_of(2);
        // Rank 1 looks blocked in round 0, but some rank already finished
        // that round: the rendezvous fired, the state is just stale.
        st.ranks.get_mut(&1).unwrap().blocked = Some(Blocked::Collective {
            op: "barrier",
            comm: CommId::WORLD,
            round: 0,
            members: members(2),
        });
        st.ranks.get_mut(&0).unwrap().blocked = blocked_recv(CommId::WORLD, Src::Rank(1), 2);
        st.completed_rounds.insert(CommId::WORLD, 1);
        assert_eq!(Analyzer::find_deadlock(&st), None);
    }

    #[test]
    fn barrier_skip_is_stuck_even_with_an_active_peer() {
        // Ranks 0 and 2 wait at a barrier; rank 1 is blocked receiving
        // from rank 0. Rank 3 being active cannot help: the receive names
        // rank 0 specifically.
        let mut st = state_of(4);
        let coll = |round| {
            Some(Blocked::Collective {
                op: "barrier",
                comm: CommId::WORLD,
                round,
                members: members(4),
            })
        };
        st.ranks.get_mut(&0).unwrap().blocked = coll(0);
        st.ranks.get_mut(&2).unwrap().blocked = coll(0);
        st.ranks.get_mut(&1).unwrap().blocked = blocked_recv(CommId::WORLD, Src::Rank(0), 4);
        assert_eq!(Analyzer::find_deadlock(&st), Some(vec![0, 1, 2]));
    }

    #[test]
    fn all_arrived_collective_is_not_a_deadlock() {
        let mut st = state_of(2);
        for r in 0..2 {
            st.ranks.get_mut(&r).unwrap().blocked = Some(Blocked::Collective {
                op: "barrier",
                comm: CommId::WORLD,
                round: 0,
                members: members(2),
            });
        }
        assert_eq!(Analyzer::find_deadlock(&st), None);
    }

    #[test]
    fn divergence_records_position_and_ops() {
        let mut st = state_of(2);
        assert!(Analyzer::check_divergence(
            &mut st,
            0,
            CommId::WORLD,
            CollOp {
                op: "barrier",
                root: None
            }
        )
        .is_none());
        let d = Analyzer::check_divergence(
            &mut st,
            1,
            CommId::WORLD,
            CollOp {
                op: "bcast",
                root: Some(0),
            },
        )
        .expect("must diverge");
        match &d.kind {
            DiagnosticKind::CollectiveDivergence {
                position,
                expected,
                observed,
            } => {
                assert_eq!(*position, 0);
                assert_eq!(expected, "barrier");
                assert_eq!(observed, "bcast(root=0)");
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    /// Drive one wildcard receive through `on_event` and return the
    /// analyzer's warnings for the given candidate set.
    fn race_warnings(candidates: Vec<(usize, i32)>) -> Vec<Diagnostic> {
        let analyzer = Analyzer::new();
        for r in 0..3 {
            analyzer.on_event(
                r,
                &MpiEvent::Init {
                    size: 3,
                    time: machine::VTime::ZERO,
                },
            );
        }
        analyzer.on_event(
            0,
            &MpiEvent::RecvBlocked {
                comm: CommId::WORLD,
                src: Src::Any,
                tag: TagSel::Is(7),
                members: members(3),
                time: machine::VTime::ZERO,
            },
        );
        let (src_world, tag) = candidates[0];
        analyzer.on_event(
            0,
            &MpiEvent::RecvMatched {
                comm: CommId::WORLD,
                src_local: src_world,
                src_world,
                tag,
                seq: 1,
                bytes: 4,
                candidates,
                time: machine::VTime::ZERO,
            },
        );
        analyzer.diagnostics()
    }

    #[test]
    fn single_sender_multi_message_wildcard_does_not_warn() {
        // Three queued messages, all from rank 1: the non-overtaking rule
        // pins the match, so there is no race however many are queued.
        assert!(race_warnings(vec![(1, 7), (1, 8), (1, 9)]).is_empty());
    }

    #[test]
    fn multi_sender_wildcard_warns_with_per_sender_candidates() {
        // Two distinct senders, one of them with a second queued message:
        // the warning counts senders (2), not messages (3), and lists the
        // earliest message per sender only.
        let warnings = race_warnings(vec![(1, 7), (2, 7), (1, 8)]);
        assert_eq!(warnings.len(), 1);
        let w = &warnings[0];
        assert_eq!(w.severity, Severity::Warn);
        assert!(
            w.message.contains("had 2 simultaneously matching senders"),
            "{}",
            w.message
        );
        match &w.kind {
            DiagnosticKind::MessageRace {
                receiver,
                candidates,
            } => {
                assert_eq!(*receiver, 0);
                assert_eq!(candidates, &vec![(1, 7), (2, 7)]);
            }
            other => panic!("expected message race, got {other:?}"),
        }
        assert_eq!(w.ranks, vec![0, 1, 2]);
    }
}
