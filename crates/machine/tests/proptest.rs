//! Property tests for the machine-model layer: virtual-time arithmetic,
//! cost-model monotonicity, and noise-stream determinism.

use machine::{presets, CollectiveCost, DetRng, LinkModel, NoiseModel, Topology, VTime, Work};
use proptest::prelude::*;

proptest! {
    #[test]
    fn vtime_roundtrip_is_lossless_for_sane_ranges(ns in 0u64..u64::MAX / 4) {
        let t = VTime::from_nanos(ns);
        // Through seconds and back: within 1 ns per ~2^52 ns of magnitude
        // (f64 mantissa), and always non-negative.
        let back = VTime::from_secs_f64(t.as_secs_f64());
        let err = back.as_nanos().abs_diff(ns);
        let tolerance = (ns >> 50).max(1);
        prop_assert!(err <= tolerance, "ns={ns} err={err}");
    }

    #[test]
    fn vtime_add_is_commutative_and_monotone(a in 0u64..1 << 62, b in 0u64..1 << 62) {
        let (ta, tb) = (VTime::from_nanos(a), VTime::from_nanos(b));
        prop_assert_eq!(ta + tb, tb + ta);
        prop_assert!(ta + tb >= ta.max(tb));
        prop_assert_eq!((ta + tb) - tb, ta);
    }

    #[test]
    fn vtime_sub_saturates(a in any::<u64>(), b in any::<u64>()) {
        let diff = VTime::from_nanos(a) - VTime::from_nanos(b);
        prop_assert_eq!(diff.as_nanos(), a.saturating_sub(b));
    }

    #[test]
    fn compute_time_is_monotone_in_work(
        flops in 0.0f64..1e15,
        bytes in 0.0f64..1e15,
        extra in 1.0f64..1e6,
    ) {
        let m = presets::knl();
        let base = m.thread_seconds_for(Work::new(flops, bytes), 1);
        let more = m.thread_seconds_for(Work::new(flops + extra, bytes + extra), 1);
        prop_assert!(more >= base);
        prop_assert!(base >= 0.0);
    }

    #[test]
    fn contention_never_speeds_up(
        flops in 1.0f64..1e12,
        threads_a in 1usize..512,
        threads_b in 1usize..512,
    ) {
        let m = presets::dual_broadwell();
        let (lo, hi) = if threads_a <= threads_b {
            (threads_a, threads_b)
        } else {
            (threads_b, threads_a)
        };
        let w = Work::new(flops, flops);
        prop_assert!(m.thread_seconds_for(w, hi) >= m.thread_seconds_for(w, lo) - 1e-15);
    }

    #[test]
    fn transfer_time_monotone_in_size(bytes in 0usize..1 << 40, extra in 1usize..1 << 20) {
        let link = LinkModel { latency: 1e-6, bandwidth: 3e9, overhead: 5e-7 };
        prop_assert!(link.transfer_secs(bytes + extra) > link.transfer_secs(bytes));
    }

    #[test]
    fn collective_costs_nonnegative_and_monotone_in_p(
        p in 1usize..2048,
        bytes in 0usize..1 << 30,
    ) {
        let link = LinkModel { latency: 2e-6, bandwidth: 3e9, overhead: 9e-7 };
        let small = CollectiveCost { link: &link, p };
        let large = CollectiveCost { link: &link, p: p * 2 };
        for f in [
            |c: &CollectiveCost<'_>, b: usize| c.bcast(b),
            |c: &CollectiveCost<'_>, b: usize| c.allreduce(b),
            |c: &CollectiveCost<'_>, b: usize| c.allgather(b),
            |c: &CollectiveCost<'_>, _| c.barrier(),
        ] {
            let s = f(&small, bytes);
            let l = f(&large, bytes);
            prop_assert!(s >= 0.0);
            prop_assert!(l >= s, "cost must not shrink with p: {s} vs {l}");
        }
    }

    #[test]
    fn noise_streams_deterministic_and_positive(
        seed in any::<u64>(),
        rank in 0u64..4096,
        sigma in 0.0f64..1.0,
    ) {
        let noise = NoiseModel { compute_sigma: sigma, net_latency_jitter_mean: 1e-6 };
        let mut a = DetRng::for_stream(seed, rank, 0);
        let mut b = DetRng::for_stream(seed, rank, 0);
        for _ in 0..16 {
            let fa = noise.compute_factor(&mut a);
            let fb = noise.compute_factor(&mut b);
            prop_assert_eq!(fa, fb);
            prop_assert!(fa > 0.0);
            prop_assert!(noise.latency_jitter(&mut a) >= 0.0);
            let _ = noise.latency_jitter(&mut b);
        }
    }

    #[test]
    fn topology_block_partition(ranks_per_node in 1usize..64, rank in 0usize..10_000) {
        let t = Topology::block(ranks_per_node);
        let node = t.node_of(rank);
        // Every rank on the node agrees about the node id.
        let first = node * ranks_per_node;
        prop_assert!(t.same_node(rank, first));
        prop_assert!(!t.same_node(first, first + ranks_per_node));
        prop_assert_eq!(t.nodes_for(rank + 1), rank / ranks_per_node + 1);
    }
}
