//! Per-machine calibration tables, computed once and cached.
//!
//! A sweep orchestrator prices the *same* machine model hundreds of times
//! (every grid cell re-opens it). The raw model is cheap to evaluate
//! point-wise, but the derived artifact a study wants — the machine's
//! effective roofline curve across thread counts, its ping-pong latency/
//! bandwidth curve, the collective cost trajectory — is a dense probe
//! over the whole parameter space, and identical for every cell that
//! names the same machine. [`cached`] computes that probe once per
//! distinct machine *configuration* (keyed by the full parameter dump,
//! not the name, so an edited `--machine-file` never reuses a stale
//! table) and hands every later caller the same `Arc`.
//!
//! The table doubles as provenance: the study store persists each
//! machine's calibration next to the runs priced under it, so a report
//! can state exactly what hardware model produced a row.

use crate::work::Work;
use crate::MachineModel;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Active-thread counts probed for the compute roofline.
const THREAD_PROBES: [usize; 8] = [1, 2, 4, 8, 16, 64, 256, 1024];

/// Message sizes probed for the network curves, in bytes.
const SIZE_PROBES: [usize; 8] = [8, 64, 512, 4 << 10, 32 << 10, 256 << 10, 2 << 20, 16 << 20];

/// Participant counts probed for the collective trajectories.
const P_PROBES: [usize; 8] = [2, 4, 8, 16, 64, 256, 1024, 16384];

/// A machine's derived cost tables. All values are seconds.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The machine's name (presentation only — the cache key is the dump).
    pub machine: String,
    /// The full parameter dump the tables were derived from.
    pub describe: String,
    /// `(active_threads, secs)` for one Gflop of pure compute per thread.
    pub gflop_secs: Vec<(usize, f64)>,
    /// `(active_threads, secs)` for one GiB of memory traffic per thread.
    pub gib_secs: Vec<(usize, f64)>,
    /// `(bytes, intra_secs, inter_secs)` one-way transfer cost.
    pub pingpong_secs: Vec<(usize, f64, f64)>,
    /// `(p, secs)` 8-byte allreduce over the node-spanning link.
    pub allreduce_secs: Vec<(usize, f64)>,
    /// `(p, secs)` dissemination barrier over the node-spanning link.
    pub barrier_secs: Vec<(usize, f64)>,
    /// `(threads, secs)` OpenMP parallel-region overhead.
    pub omp_region_secs: Vec<(usize, f64)>,
}

impl Calibration {
    /// Derive the calibration tables by probing `m`'s cost models.
    pub fn derive(m: &MachineModel) -> Calibration {
        let gflop = Work::flops(1e9);
        let gib = Work::bytes((1u64 << 30) as f64);
        let gflop_secs = THREAD_PROBES
            .iter()
            .map(|&t| (t, m.thread_seconds_for(gflop, t)))
            .collect();
        let gib_secs = THREAD_PROBES
            .iter()
            .map(|&t| (t, m.thread_seconds_for(gib, t)))
            .collect();
        let pingpong_secs = SIZE_PROBES
            .iter()
            .map(|&bytes| {
                (
                    bytes,
                    m.network.intra_node.transfer_secs(bytes),
                    m.network.inter_node.transfer_secs(bytes),
                )
            })
            .collect();
        let spans_nodes = m.topology.nodes_for(P_PROBES[P_PROBES.len() - 1]) > 1;
        let allreduce_secs = P_PROBES
            .iter()
            .map(|&p| (p, m.collective(p, spans_nodes).allreduce(8)))
            .collect();
        let barrier_secs = P_PROBES
            .iter()
            .map(|&p| (p, m.collective(p, spans_nodes).barrier()))
            .collect();
        let omp_region_secs = THREAD_PROBES
            .iter()
            .map(|&t| (t, m.omp.region_secs(t)))
            .collect();
        Calibration {
            machine: m.name.clone(),
            describe: m.describe(),
            gflop_secs,
            gib_secs,
            pingpong_secs,
            allreduce_secs,
            barrier_secs,
            omp_region_secs,
        }
    }

    /// The calibration as a JSON document (hand-rolled like every other
    /// exporter in the workspace; `mpisim::jsoncheck`-valid).
    pub fn to_json(&self) -> String {
        let pair_rows = |rows: &[(usize, f64)], key: &str| -> String {
            let cells: Vec<String> = rows
                .iter()
                .map(|(k, s)| format!("{{\"{key}\": {k}, \"secs\": {s:e}}}"))
                .collect();
            cells.join(", ")
        };
        let pingpong: Vec<String> = self
            .pingpong_secs
            .iter()
            .map(|(b, intra, inter)| {
                format!("{{\"bytes\": {b}, \"intra_secs\": {intra:e}, \"inter_secs\": {inter:e}}}")
            })
            .collect();
        format!(
            "{{\"schema\": \"mpistudy-calibration-v1\", \"machine\": {}, \"describe\": {}, \
             \"gflop_secs\": [{}], \"gib_secs\": [{}], \"pingpong_secs\": [{}], \
             \"allreduce_secs\": [{}], \"barrier_secs\": [{}], \"omp_region_secs\": [{}]}}\n",
            json_str(&self.machine),
            json_str(&self.describe),
            pair_rows(&self.gflop_secs, "threads"),
            pair_rows(&self.gib_secs, "threads"),
            pingpong.join(", "),
            pair_rows(&self.allreduce_secs, "p"),
            pair_rows(&self.barrier_secs, "p"),
            pair_rows(&self.omp_region_secs, "threads"),
        )
    }
}

/// Minimal JSON string escaping (the machine dump contains no exotica,
/// but quotes and backslashes must survive).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Process-wide calibration cache keyed by the machine's parameter dump.
fn cache() -> &'static Mutex<HashMap<String, Arc<Calibration>>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<Calibration>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// `(hits, misses)` counters for the process-wide cache.
fn counters() -> &'static Mutex<(u64, u64)> {
    static COUNTERS: OnceLock<Mutex<(u64, u64)>> = OnceLock::new();
    COUNTERS.get_or_init(|| Mutex::new((0, 0)))
}

/// The calibration for `m`, derived at most once per distinct machine
/// configuration in this process. Concurrent first callers may race to
/// derive, but all end up sharing whichever table landed in the cache.
pub fn cached(m: &MachineModel) -> Arc<Calibration> {
    let key = m.describe();
    if let Some(hit) = cache().lock().expect("calibration cache").get(&key) {
        counters().lock().expect("calibration counters").0 += 1;
        return hit.clone();
    }
    let derived = Arc::new(Calibration::derive(m));
    let mut map = cache().lock().expect("calibration cache");
    let entry = map.entry(key).or_insert_with(|| derived.clone());
    counters().lock().expect("calibration counters").1 += 1;
    entry.clone()
}

/// `(hits, misses)` observed by [`cached`] since process start. A warm
/// sweep over an already-seen machine set shows only hits growing.
pub fn cache_counters() -> (u64, u64) {
    *counters().lock().expect("calibration counters")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn derives_monotone_tables() {
        let c = Calibration::derive(&presets::knl());
        // Compute never gets faster with more contending threads.
        for w in c.gflop_secs.windows(2) {
            assert!(w[1].1 >= w[0].1, "{:?}", c.gflop_secs);
        }
        // Bigger messages never transfer faster.
        for w in c.pingpong_secs.windows(2) {
            assert!(w[1].1 >= w[0].1 && w[1].2 >= w[0].2);
        }
        // Collectives grow (weakly) with participant count.
        for w in c.allreduce_secs.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn cache_hits_on_identical_configuration() {
        let (_, misses_before) = cache_counters();
        let a = cached(&presets::dual_broadwell());
        let b = cached(&presets::dual_broadwell());
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        let (_, misses_after) = cache_counters();
        assert_eq!(misses_after, misses_before + 1);
    }

    #[test]
    fn cache_distinguishes_edited_models() {
        let base = presets::nehalem_cluster();
        let mut edited = presets::nehalem_cluster();
        edited.noise = crate::NoiseModel::NONE;
        let a = cached(&base);
        let b = cached(&edited);
        assert!(!Arc::ptr_eq(&a, &b), "edited model must re-calibrate");
    }

    #[test]
    fn json_is_wellformed_enough() {
        let j = Calibration::derive(&presets::ideal()).to_json();
        assert!(j.starts_with('{') && j.ends_with("}\n"));
        assert!(j.contains("\"machine\": \"ideal\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
