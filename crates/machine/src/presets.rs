//! Machine presets calibrated against the paper's three test systems.
//!
//! Calibration targets (see EXPERIMENTS.md for the paper-vs-measured table):
//!
//! * `nehalem_cluster` — the convolution benchmark's sequential run takes
//!   ≈5590 s (paper: 5589.84 s total section time) and the HALO section
//!   becomes the dominant speedup bound past ~64 processes.
//! * `knl` — LULESH s=48 single-process walltime ≈882 s (paper: 882.48 s)
//!   with the Lagrange phases hitting their inflexion point near 24 threads.
//! * `dual_broadwell` — faster cores, flatter OpenMP overhead: MPI
//!   parallelism outruns OpenMP in strong scaling, but OpenMP still helps
//!   when the per-process problem is large (p = 1).
//!
//! Absolute seconds are calibrated; the *shapes* (who wins, where the
//! crossovers and inflexion points fall) are what the reproduction checks.

use crate::compute::{ComputeModel, CoreModel, MemoryModel};
use crate::network::{LinkModel, NetworkModel};
use crate::noise::NoiseModel;
use crate::omp::OmpModel;
use crate::topology::Topology;
use crate::MachineModel;

/// The Intel Nehalem test cluster of the convolution experiment (§5.1):
/// single-socket 8-core Xeon X5560 nodes, 24 GB each, up to 57 nodes
/// (456 cores), DDR InfiniBand-class interconnect.
pub fn nehalem_cluster() -> MachineModel {
    MachineModel {
        name: "nehalem-cluster".to_string(),
        cores_per_node: 8,
        hw_threads_per_core: 1, // hyper-threading disabled in the paper
        topology: Topology::block(8),
        compute: ComputeModel {
            // Effective rate calibrated to the paper's 5.6 s per 21 Mpx
            // convolution sweep (unvectorized stencil code, not peak).
            core: CoreModel {
                flops_per_sec: 2.05e8,
                smt_efficiency: 1.0,
            },
            memory: MemoryModel {
                node_bandwidth: 25.0e9,
                per_thread_bandwidth: 6.0e9,
            },
        },
        network: NetworkModel {
            intra_node: LinkModel {
                latency: 6.0e-7,
                bandwidth: 5.0e9,
                overhead: 2.5e-7,
            },
            inter_node: LinkModel {
                latency: 2.2e-6,
                bandwidth: 3.2e9,
                overhead: 9.0e-7,
            },
        },
        omp: OmpModel {
            fork_base: 1.5e-6,
            fork_per_thread: 4.0e-7,
            barrier_base: 8.0e-7,
            barrier_per_round: 5.0e-7,
            dynamic_per_chunk: 8.0e-8,
        },
        // Jitter drives the Fig. 5b finding: per-step compute noise
        // accumulating through halo dependencies over 1000 steps. The
        // sigma is calibrated against the paper's Fig. 6 HALO totals
        // (≈47 ms of wait per 87 ms step at p = 64 — the cluster the
        // paper measured was genuinely noisy at scale).
        noise: NoiseModel {
            compute_sigma: 0.28,
            net_latency_jitter_mean: 1.0e-5,
        },
    }
}

/// The Intel Knights Landing node of §5.2: 68 cores, 4 hardware threads
/// each, slow cores, high-bandwidth MCDRAM that saturates early, and an
/// OpenMP runtime whose per-thread costs climb quickly.
pub fn knl() -> MachineModel {
    MachineModel {
        name: "knl".to_string(),
        cores_per_node: 68,
        hw_threads_per_core: 4,
        topology: Topology::SINGLE_NODE,
        compute: ComputeModel {
            // Roughly 1/3 of a Broadwell core for scalar-ish hydro code.
            // Hardware threads sharing a KNL core buy almost nothing for
            // flop-saturated hydro kernels (low smt_efficiency) — this is
            // what makes extra OpenMP threads hurt at p = 27/64 (Fig. 9).
            core: CoreModel {
                flops_per_sec: 5.0e8,
                smt_efficiency: 0.10,
            },
            memory: MemoryModel {
                node_bandwidth: 90.0e9,
                per_thread_bandwidth: 7.0e9,
            },
        },
        network: NetworkModel {
            intra_node: LinkModel {
                latency: 9.0e-7,
                bandwidth: 4.0e9,
                overhead: 4.0e-7,
            },
            // Single node: inter-node params only matter if a run asks for
            // more ranks than the node holds; keep them finite anyway.
            inter_node: LinkModel {
                latency: 2.5e-6,
                bandwidth: 3.0e9,
                overhead: 1.0e-6,
            },
        },
        // Steep per-thread fork cost: this is what places the LULESH
        // inflexion point near 24 threads at s = 48 (Fig. 10). The value
        // is calibrated from the paper's own measurements — at 24 threads
        // the two Lagrange phases spend ≈71 s of their 108 s in runtime
        // overhead (882.48/24 ≈ 37 s would be perfect scaling), which over
        // ~2500 iterations and ~10 parallel regions per iteration implies
        // ≈1e-4 s of fork/join cost per thread. The paper itself notes the
        // KNL's "OpenMP overhead tends to increase more rapidly than on
        // the Broadwell".
        omp: OmpModel {
            fork_base: 5.0e-6,
            fork_per_thread: 6.0e-5,
            barrier_base: 2.0e-6,
            barrier_per_round: 3.0e-6,
            dynamic_per_chunk: 2.5e-7,
        },
        noise: NoiseModel {
            compute_sigma: 0.015,
            net_latency_jitter_mean: 1.0e-6,
        },
    }
}

/// The dual-socket Broadwell node of §5.2: 2 × 18 cores, 2 hardware threads
/// per core.
pub fn dual_broadwell() -> MachineModel {
    MachineModel {
        name: "dual-broadwell".to_string(),
        cores_per_node: 36,
        hw_threads_per_core: 2,
        topology: Topology::SINGLE_NODE,
        compute: ComputeModel {
            core: CoreModel {
                flops_per_sec: 1.5e9,
                smt_efficiency: 0.25,
            },
            memory: MemoryModel {
                node_bandwidth: 130.0e9,
                per_thread_bandwidth: 12.0e9,
            },
        },
        network: NetworkModel {
            intra_node: LinkModel {
                latency: 5.0e-7,
                bandwidth: 8.0e9,
                overhead: 2.0e-7,
            },
            inter_node: LinkModel {
                latency: 2.0e-6,
                bandwidth: 6.0e9,
                overhead: 8.0e-7,
            },
        },
        // An order of magnitude flatter than the KNL: OpenMP keeps paying
        // off to high thread counts when the per-process problem is large.
        omp: OmpModel {
            fork_base: 3.0e-6,
            fork_per_thread: 1.2e-5,
            barrier_base: 2.0e-6,
            barrier_per_round: 3.0e-6,
            dynamic_per_chunk: 1.0e-7,
        },
        noise: NoiseModel {
            compute_sigma: 0.01,
            net_latency_jitter_mean: 5.0e-7,
        },
    }
}

/// A hypothetical next-generation many-core node, in the spirit of the
/// paper's motivation (§1/§7: "porting applications using domain
/// decomposition to future generation platforms with greater cores counts
/// and reduced memory per thread"): 256 slower cores with 2-way SMT,
/// aggressive bandwidth ceiling relative to the core count, and OpenMP
/// overheads between the Broadwell and the KNL. Used by the `forecast`
/// experiment target.
pub fn future_manycore() -> MachineModel {
    MachineModel {
        name: "future-manycore".to_string(),
        cores_per_node: 256,
        hw_threads_per_core: 2,
        topology: Topology::block(256),
        compute: ComputeModel {
            core: CoreModel {
                flops_per_sec: 4.0e8,
                smt_efficiency: 0.15,
            },
            memory: MemoryModel {
                // Lots of cores, proportionally little bandwidth: the
                // "reduced memory (and bandwidth) per thread" squeeze.
                node_bandwidth: 200.0e9,
                per_thread_bandwidth: 2.0e9,
            },
        },
        network: NetworkModel {
            intra_node: LinkModel {
                latency: 7.0e-7,
                bandwidth: 6.0e9,
                overhead: 3.0e-7,
            },
            inter_node: LinkModel {
                latency: 1.5e-6,
                bandwidth: 12.0e9,
                overhead: 5.0e-7,
            },
        },
        omp: OmpModel {
            fork_base: 4.0e-6,
            fork_per_thread: 3.0e-5,
            barrier_base: 2.0e-6,
            barrier_per_round: 4.0e-6,
            dynamic_per_chunk: 1.5e-7,
        },
        noise: NoiseModel {
            compute_sigma: 0.08,
            net_latency_jitter_mean: 2.0e-6,
        },
    }
}

/// An idealized machine: 1 Gflop/s cores, free network, free OpenMP
/// runtime, no noise. Used by unit tests (costs are exactly predictable)
/// and by the D1/D2 ablations.
pub fn ideal() -> MachineModel {
    MachineModel {
        name: "ideal".to_string(),
        cores_per_node: usize::MAX,
        hw_threads_per_core: 1,
        topology: Topology::SINGLE_NODE,
        compute: ComputeModel {
            core: CoreModel::UNIT,
            memory: MemoryModel::INFINITE,
        },
        network: NetworkModel::FREE,
        omp: OmpModel::FREE,
        noise: NoiseModel::NONE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::Work;

    #[test]
    fn presets_construct() {
        for m in [nehalem_cluster(), knl(), dual_broadwell(), ideal()] {
            assert!(m.cores_per_node >= 1);
            assert!(m.compute.core.flops_per_sec > 0.0);
        }
    }

    #[test]
    fn nehalem_sequential_convolution_calibration() {
        // 5616 x 3744 RGB doubles, 9-tap mean filter, 2 flops/tap, 1000 steps.
        let m = nehalem_cluster();
        let px = 5616.0 * 3744.0 * 3.0;
        let flops_per_step = px * 9.0 * 2.0;
        let secs = m.compute.seconds_for(Work::flops(flops_per_step), 1, 1) * 1000.0;
        // Paper: 5589.84 s total sequential section time. Within 10%.
        assert!(
            (secs - 5589.84).abs() / 5589.84 < 0.10,
            "calibration off: {secs}"
        );
    }

    #[test]
    fn ideal_is_free() {
        let m = ideal();
        assert_eq!(m.omp.region_secs(1024), 0.0);
        assert_eq!(m.network.inter_node.transfer_secs(1 << 30), 0.0);
        assert!(m.noise.is_none());
    }

    #[test]
    fn knl_threads_capacity() {
        let m = knl();
        assert_eq!(m.hw_threads_per_node(), 272);
        let b = dual_broadwell();
        assert_eq!(b.hw_threads_per_node(), 72);
    }
}
