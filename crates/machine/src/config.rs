//! Plain-text machine definitions.
//!
//! Downstream users should not need to recompile to model their cluster: a
//! machine is described by a small `key = value` file (comments with `#`),
//! loaded with [`MachineModel::from_config_str`] and written back with
//! [`MachineModel::to_config_str`] (a lossless round trip, used for
//! experiment provenance).
//!
//! ```text
//! name = my-cluster
//! cores_per_node = 8
//! ranks_per_node = 8          # or "single" for one big node
//! flops_per_sec = 2.05e8
//! inter.latency = 2.2e-6
//! noise.compute_sigma = 0.28
//! ```
//!
//! Unspecified keys keep the `ideal()` machine's values; unknown keys are
//! an error (typos must not silently produce a different machine).
//! `#` always starts a comment, so values (including machine names)
//! cannot contain it.

use crate::topology::Topology;
use crate::{presets, MachineModel};

/// A configuration parsing error: line number plus description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending entry (0 for whole-file problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "machine config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl MachineModel {
    /// Parse a machine definition, starting from the `ideal()` defaults.
    pub fn from_config_str(text: &str) -> Result<MachineModel, ConfigError> {
        let mut m = presets::ideal();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("expected 'key = value', got '{line}'"),
            })?;
            let key = key.trim();
            let value = value.trim();
            let err = |message: String| ConfigError {
                line: line_no,
                message,
            };
            let parse_f64 = |v: &str| -> Result<f64, ConfigError> {
                v.parse().map_err(|_| err(format!("'{v}' is not a number")))
            };
            let parse_usize = |v: &str| -> Result<usize, ConfigError> {
                v.parse()
                    .map_err(|_| err(format!("'{v}' is not a positive integer")))
            };
            match key {
                "name" => m.name = value.to_string(),
                "cores_per_node" => m.cores_per_node = parse_usize(value)?,
                "hw_threads_per_core" => m.hw_threads_per_core = parse_usize(value)?,
                "ranks_per_node" => {
                    m.topology = if value == "single" {
                        Topology::SINGLE_NODE
                    } else {
                        Topology::block(parse_usize(value)?)
                    }
                }
                "flops_per_sec" => m.compute.core.flops_per_sec = parse_f64(value)?,
                "smt_efficiency" => m.compute.core.smt_efficiency = parse_f64(value)?,
                "node_bandwidth" => m.compute.memory.node_bandwidth = parse_f64(value)?,
                "per_thread_bandwidth" => m.compute.memory.per_thread_bandwidth = parse_f64(value)?,
                "intra.latency" => m.network.intra_node.latency = parse_f64(value)?,
                "intra.bandwidth" => m.network.intra_node.bandwidth = parse_f64(value)?,
                "intra.overhead" => m.network.intra_node.overhead = parse_f64(value)?,
                "inter.latency" => m.network.inter_node.latency = parse_f64(value)?,
                "inter.bandwidth" => m.network.inter_node.bandwidth = parse_f64(value)?,
                "inter.overhead" => m.network.inter_node.overhead = parse_f64(value)?,
                "omp.fork_base" => m.omp.fork_base = parse_f64(value)?,
                "omp.fork_per_thread" => m.omp.fork_per_thread = parse_f64(value)?,
                "omp.barrier_base" => m.omp.barrier_base = parse_f64(value)?,
                "omp.barrier_per_round" => m.omp.barrier_per_round = parse_f64(value)?,
                "omp.dynamic_per_chunk" => m.omp.dynamic_per_chunk = parse_f64(value)?,
                "noise.compute_sigma" => m.noise.compute_sigma = parse_f64(value)?,
                "noise.net_latency_jitter_mean" => {
                    m.noise.net_latency_jitter_mean = parse_f64(value)?;
                }
                other => {
                    return Err(err(format!("unknown key '{other}'")));
                }
            }
        }
        Ok(m)
    }

    /// Load a machine definition from a file.
    pub fn from_config_file(path: &std::path::Path) -> Result<MachineModel, ConfigError> {
        let text = std::fs::read_to_string(path).map_err(|e| ConfigError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        MachineModel::from_config_str(&text)
    }

    /// Serialize to the config format (parses back to an identical model).
    /// `#` starts a comment in the format, so a name containing it (only
    /// constructible in code, never by the parser) is sanitized.
    pub fn to_config_str(&self) -> String {
        let name = self.name.replace('#', "-");
        let ranks_per_node = if self.topology == Topology::SINGLE_NODE {
            "single".to_string()
        } else {
            self.topology.ranks_per_node.to_string()
        };
        format!(
            "name = {}\n\
             cores_per_node = {}\n\
             hw_threads_per_core = {}\n\
             ranks_per_node = {}\n\
             flops_per_sec = {:e}\n\
             smt_efficiency = {}\n\
             node_bandwidth = {:e}\n\
             per_thread_bandwidth = {:e}\n\
             intra.latency = {:e}\n\
             intra.bandwidth = {:e}\n\
             intra.overhead = {:e}\n\
             inter.latency = {:e}\n\
             inter.bandwidth = {:e}\n\
             inter.overhead = {:e}\n\
             omp.fork_base = {:e}\n\
             omp.fork_per_thread = {:e}\n\
             omp.barrier_base = {:e}\n\
             omp.barrier_per_round = {:e}\n\
             omp.dynamic_per_chunk = {:e}\n\
             noise.compute_sigma = {}\n\
             noise.net_latency_jitter_mean = {:e}\n",
            name,
            self.cores_per_node,
            self.hw_threads_per_core,
            ranks_per_node,
            self.compute.core.flops_per_sec,
            self.compute.core.smt_efficiency,
            self.compute.memory.node_bandwidth,
            self.compute.memory.per_thread_bandwidth,
            self.network.intra_node.latency,
            self.network.intra_node.bandwidth,
            self.network.intra_node.overhead,
            self.network.inter_node.latency,
            self.network.inter_node.bandwidth,
            self.network.inter_node.overhead,
            self.omp.fork_base,
            self.omp.fork_per_thread,
            self.omp.barrier_base,
            self.omp.barrier_per_round,
            self.omp.dynamic_per_chunk,
            self.noise.compute_sigma,
            self.noise.net_latency_jitter_mean,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_config() {
        let m =
            MachineModel::from_config_str("name = tiny\ncores_per_node = 4\nflops_per_sec = 1e9\n")
                .unwrap();
        assert_eq!(m.name, "tiny");
        assert_eq!(m.cores_per_node, 4);
        assert_eq!(m.compute.core.flops_per_sec, 1e9);
        // Unspecified keys keep ideal defaults.
        assert!(m.noise.is_none());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let m =
            MachineModel::from_config_str("# a cluster\n\nname = c1  # trailing comment\n\n  \n")
                .unwrap();
        assert_eq!(m.name, "c1");
    }

    #[test]
    fn presets_roundtrip_through_config() {
        for preset in [
            presets::nehalem_cluster(),
            presets::knl(),
            presets::dual_broadwell(),
            presets::ideal(),
        ] {
            let text = preset.to_config_str();
            let back = MachineModel::from_config_str(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
            assert_eq!(back.name, preset.name);
            assert_eq!(back.cores_per_node, preset.cores_per_node);
            assert_eq!(back.topology, preset.topology);
            assert_eq!(back.compute, preset.compute);
            assert_eq!(back.network, preset.network);
            assert_eq!(back.omp, preset.omp);
            assert_eq!(back.noise, preset.noise);
        }
    }

    #[test]
    fn unknown_key_rejected_with_line_number() {
        let err = MachineModel::from_config_str("name = x\nfloops = 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown key 'floops'"), "{err}");
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(MachineModel::from_config_str("just words\n").is_err());
        let err = MachineModel::from_config_str("cores_per_node = many\n").unwrap_err();
        assert!(err.message.contains("not a positive integer"));
        let err = MachineModel::from_config_str("flops_per_sec = fast\n").unwrap_err();
        assert!(err.message.contains("not a number"));
    }

    #[test]
    fn single_node_topology_spelling() {
        let m = MachineModel::from_config_str("ranks_per_node = single\n").unwrap();
        assert_eq!(m.topology, Topology::SINGLE_NODE);
        let m = MachineModel::from_config_str("ranks_per_node = 16\n").unwrap();
        assert_eq!(m.topology, Topology::block(16));
    }

    #[test]
    fn file_loading_errors_are_reported() {
        let err =
            MachineModel::from_config_file(std::path::Path::new("/no/such/file.mach")).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("cannot read"));
    }
}
