//! Virtual time.
//!
//! All simulated clocks in the workspace count integer nanoseconds. Using an
//! integer representation keeps arithmetic associative and runs bit-for-bit
//! reproducible across platforms, which floating-point seconds would not
//! guarantee once timestamps get large relative to individual costs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `VTime` is used both as an absolute timestamp (nanoseconds since the start
/// of the simulated run) and as a duration; the arithmetic is the same and the
/// simulation never needs a distinguished epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(pub u64);

impl VTime {
    /// The zero timestamp / empty duration.
    pub const ZERO: VTime = VTime(0);
    /// The maximum representable time (used as an "infinity" sentinel).
    pub const MAX: VTime = VTime(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        VTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        VTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        VTime(ms * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs saturate to zero: every cost fed to the
    /// simulator is a physical duration, so a negative value is always a
    /// modeling bug upstream and clamping keeps clocks monotone.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return VTime::ZERO;
        }
        if secs.is_infinite() {
            return VTime::MAX;
        }
        let ns = secs * 1e9;
        if ns >= u64::MAX as f64 {
            VTime::MAX
        } else {
            VTime(ns.round() as u64)
        }
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub const fn saturating_sub(self, other: VTime) -> VTime {
        VTime(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, other: VTime) -> VTime {
        VTime(self.0.saturating_add(other.0))
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: VTime) -> VTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two timestamps.
    #[inline]
    pub fn min(self, other: VTime) -> VTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Scale a duration by a non-negative factor, rounding to nanoseconds.
    #[inline]
    pub fn scale(self, factor: f64) -> VTime {
        VTime::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// True when this is the zero time.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: VTime) -> VTime {
        VTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: VTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for VTime {
    type Output = VTime;
    /// Saturating: durations never go negative.
    #[inline]
    fn sub(self, rhs: VTime) -> VTime {
        VTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for VTime {
    #[inline]
    fn sub_assign(&mut self, rhs: VTime) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for VTime {
    type Output = VTime;
    #[inline]
    fn mul(self, rhs: u64) -> VTime {
        VTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for VTime {
    type Output = VTime;
    #[inline]
    fn div(self, rhs: u64) -> VTime {
        VTime(self.0 / rhs)
    }
}

impl Sum for VTime {
    fn sum<I: Iterator<Item = VTime>>(iter: I) -> VTime {
        iter.fold(VTime::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a VTime> for VTime {
    fn sum<I: Iterator<Item = &'a VTime>>(iter: I) -> VTime {
        iter.fold(VTime::ZERO, |a, b| a + *b)
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3}us", s * 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Mean of a slice of times (zero for an empty slice).
pub fn mean(times: &[VTime]) -> VTime {
    if times.is_empty() {
        return VTime::ZERO;
    }
    let total: u128 = times.iter().map(|t| t.0 as u128).sum();
    VTime((total / times.len() as u128) as u64)
}

/// Population variance of a slice of times, in seconds squared.
pub fn variance_secs2(times: &[VTime]) -> f64 {
    if times.len() < 2 {
        return 0.0;
    }
    let m = mean(times).as_secs_f64();
    times
        .iter()
        .map(|t| {
            let d = t.as_secs_f64() - m;
            d * d
        })
        .sum::<f64>()
        / times.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_secs() {
        let t = VTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(VTime::from_secs_f64(-3.0), VTime::ZERO);
        assert_eq!(VTime::from_secs_f64(f64::NAN), VTime::ZERO);
        assert_eq!(VTime::from_secs_f64(f64::NEG_INFINITY), VTime::ZERO);
    }

    #[test]
    fn overflow_saturates() {
        assert_eq!(VTime::from_secs_f64(f64::INFINITY), VTime::MAX);
        assert_eq!(VTime::MAX + VTime::from_nanos(1), VTime::MAX);
        assert_eq!(VTime::MAX * 3, VTime::MAX);
    }

    #[test]
    fn sub_saturates() {
        let a = VTime::from_nanos(5);
        let b = VTime::from_nanos(9);
        assert_eq!(a - b, VTime::ZERO);
        assert_eq!(b - a, VTime::from_nanos(4));
    }

    #[test]
    fn min_max() {
        let a = VTime::from_nanos(5);
        let b = VTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn mean_and_variance() {
        let ts = [
            VTime::from_secs_f64(1.0),
            VTime::from_secs_f64(2.0),
            VTime::from_secs_f64(3.0),
        ];
        assert_eq!(mean(&ts), VTime::from_secs_f64(2.0));
        let v = variance_secs2(&ts);
        assert!((v - 2.0 / 3.0).abs() < 1e-9, "{v}");
        assert_eq!(mean(&[]), VTime::ZERO);
        assert_eq!(variance_secs2(&[VTime::ZERO]), 0.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", VTime::from_secs_f64(2.5)), "2.500s");
        assert_eq!(format!("{}", VTime::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", VTime::from_micros(7)), "7.000us");
        assert_eq!(format!("{}", VTime::from_nanos(42)), "42ns");
    }

    #[test]
    fn sum_iterators() {
        let ts = vec![VTime::from_nanos(1), VTime::from_nanos(2)];
        let s: VTime = ts.iter().sum();
        assert_eq!(s, VTime::from_nanos(3));
        let s2: VTime = ts.into_iter().sum();
        assert_eq!(s2, VTime::from_nanos(3));
    }

    #[test]
    fn scale_rounds() {
        let t = VTime::from_secs_f64(1.0).scale(0.25);
        assert_eq!(t, VTime::from_secs_f64(0.25));
        assert_eq!(VTime::from_secs_f64(1.0).scale(-1.0), VTime::ZERO);
    }
}
