//! Core and memory models: converting [`Work`] into virtual seconds.

use crate::time::VTime;
use crate::work::Work;

/// Model of a single core's execution rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreModel {
    /// Sustained floating-point rate of one core in flops/s.
    pub flops_per_sec: f64,
    /// Relative rate of a hyper-thread when more than one hardware thread
    /// shares a core (1.0 = full core each; 0.5 = a shared core's throughput
    /// splits evenly). Applied per extra thread on the same core.
    pub smt_efficiency: f64,
}

impl CoreModel {
    /// A convenient "1 Gflop/s, no SMT penalty" core for unit tests.
    pub const UNIT: CoreModel = CoreModel {
        flops_per_sec: 1e9,
        smt_efficiency: 1.0,
    };

    /// Effective per-thread flop rate when `threads_on_core` hardware
    /// threads share this core.
    pub fn rate_with_smt(&self, threads_on_core: usize) -> f64 {
        if threads_on_core <= 1 {
            return self.flops_per_sec;
        }
        // A shared core delivers slightly more aggregate throughput than one
        // thread alone (latency hiding), but each thread individually slows
        // down. Aggregate = rate * (1 + eff*(t-1)) split across t threads.
        let t = threads_on_core as f64;
        self.flops_per_sec * (1.0 + self.smt_efficiency * (t - 1.0)) / t
    }
}

/// Model of a node's memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Peak node-level memory bandwidth in bytes/s.
    pub node_bandwidth: f64,
    /// Bandwidth one thread can extract alone, in bytes/s. Additional
    /// threads add bandwidth until `node_bandwidth` saturates.
    pub per_thread_bandwidth: f64,
}

impl MemoryModel {
    /// A memory system that never limits anything (for pure-compute tests).
    pub const INFINITE: MemoryModel = MemoryModel {
        node_bandwidth: f64::INFINITY,
        per_thread_bandwidth: f64::INFINITY,
    };

    /// Bandwidth available to *each* of `threads` concurrently streaming
    /// threads: linear ramp capped by node saturation.
    pub fn bandwidth_per_thread(&self, threads: usize) -> f64 {
        let t = threads.max(1) as f64;
        let aggregate = (self.per_thread_bandwidth * t).min(self.node_bandwidth);
        aggregate / t
    }
}

/// Combined node compute model.
///
/// The duration of a [`Work`] record on one thread follows a roofline rule:
/// `time = max(flops / flop_rate, bytes / bandwidth)` — a kernel is limited
/// by whichever resource it exhausts first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    pub core: CoreModel,
    pub memory: MemoryModel,
}

impl ComputeModel {
    /// Time for `work` on a single thread, with `concurrent_threads` threads
    /// active on the node (memory contention) of which `threads_on_core`
    /// share this thread's core (SMT contention).
    pub fn seconds_for(
        &self,
        work: Work,
        concurrent_threads: usize,
        threads_on_core: usize,
    ) -> f64 {
        if work.is_zero() {
            return 0.0;
        }
        let flop_rate = self.core.rate_with_smt(threads_on_core);
        let bw = self.memory.bandwidth_per_thread(concurrent_threads);
        let t_flops = if work.flops > 0.0 {
            work.flops / flop_rate
        } else {
            0.0
        };
        let t_bytes = if work.bytes > 0.0 {
            work.bytes / bw
        } else {
            0.0
        };
        t_flops.max(t_bytes)
    }

    /// Single-thread, uncontended convenience wrapper.
    pub fn time_for(&self, work: Work) -> VTime {
        VTime::from_secs_f64(self.seconds_for(work, 1, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> ComputeModel {
        ComputeModel {
            core: CoreModel::UNIT,
            memory: MemoryModel {
                node_bandwidth: 8e9,
                per_thread_bandwidth: 2e9,
            },
        }
    }

    #[test]
    fn pure_flops_time() {
        let m = unit();
        assert!((m.seconds_for(Work::flops(2e9), 1, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pure_bytes_time() {
        let m = unit();
        // 2 GB at 2 GB/s per thread.
        assert!((m.seconds_for(Work::bytes(2e9), 1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roofline_takes_max() {
        let m = unit();
        let w = Work::new(1e9, 4e9); // 1s of flops, 2s of bytes
        assert!((m.seconds_for(w, 1, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_saturation() {
        let m = unit();
        // 4 threads saturate the 8 GB/s node exactly: each still gets 2 GB/s.
        assert!((m.memory.bandwidth_per_thread(4) - 2e9).abs() < 1.0);
        // 8 threads share 8 GB/s: 1 GB/s each, so byte-bound work doubles.
        let alone = m.seconds_for(Work::bytes(1e9), 1, 1);
        let crowded = m.seconds_for(Work::bytes(1e9), 8, 1);
        assert!((crowded / alone - 2.0).abs() < 1e-9);
    }

    #[test]
    fn smt_slows_individual_threads() {
        let core = CoreModel {
            flops_per_sec: 1e9,
            smt_efficiency: 0.3,
        };
        let alone = core.rate_with_smt(1);
        let shared = core.rate_with_smt(2);
        // Two threads: aggregate 1.3x split over 2 = 0.65x each.
        assert!((shared / alone - 0.65).abs() < 1e-12);
    }

    #[test]
    fn zero_work_is_free() {
        assert_eq!(unit().seconds_for(Work::ZERO, 1, 1), 0.0);
        assert_eq!(unit().time_for(Work::ZERO), VTime::ZERO);
    }

    #[test]
    fn infinite_memory_never_limits() {
        let m = ComputeModel {
            core: CoreModel::UNIT,
            memory: MemoryModel::INFINITE,
        };
        assert!((m.seconds_for(Work::new(1e9, 1e18), 64, 1) - 1.0).abs() < 1e-12);
    }
}
