//! # machine — parameterized machine models for virtual-time simulation
//!
//! This crate is the substrate that lets the reproduction "run" the paper's
//! hardware — a 456-core Nehalem cluster, an Intel KNL, a dual-socket
//! Broadwell — on a laptop. Nothing here executes work; it *prices* work:
//!
//! * [`Work`] describes a kernel (flops + bytes) machine-independently;
//! * [`ComputeModel`] converts work into seconds with a roofline rule,
//!   including SMT and memory-bandwidth contention;
//! * [`NetworkModel`] prices point-to-point messages and collectives with a
//!   LogGP-style model (intra- vs inter-node links chosen by [`Topology`]);
//! * [`OmpModel`] prices fork/join/barrier overheads of a shared-memory
//!   runtime — the ingredient behind the paper's "inflexion point";
//! * [`NoiseModel`] adds deterministic, seeded performance jitter — the
//!   ingredient behind the paper's growing HALO time (Fig. 5b);
//! * [`VTime`] is the integer-nanosecond virtual time unit used everywhere.
//!
//! See `presets` for the three calibrated machines plus an `ideal()` machine
//! used in tests and ablations.

pub mod calibration;
pub mod compute;
pub mod config;
pub mod network;
pub mod noise;
pub mod omp;
pub mod presets;
pub mod time;
pub mod topology;
pub mod work;

pub use calibration::Calibration;
pub use compute::{ComputeModel, CoreModel, MemoryModel};
pub use config::ConfigError;
pub use network::{CollectiveCost, LinkModel, NetworkModel};
pub use noise::{DetRng, NoiseModel};
pub use omp::OmpModel;
pub use time::VTime;
pub use topology::Topology;
pub use work::Work;

/// A complete machine description: node shape, compute, network, OpenMP
/// runtime, and noise.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Human-readable machine name (appears in experiment output).
    pub name: String,
    /// Physical cores per node.
    pub cores_per_node: usize,
    /// Hardware threads per core (1 = no SMT).
    pub hw_threads_per_core: usize,
    /// How MPI ranks are placed onto nodes.
    pub topology: Topology,
    /// Core + memory model.
    pub compute: ComputeModel,
    /// Interconnect model.
    pub network: NetworkModel,
    /// Shared-memory runtime overhead model.
    pub omp: OmpModel,
    /// Performance jitter model.
    pub noise: NoiseModel,
}

impl MachineModel {
    /// Total hardware threads one node can run without oversubscription.
    pub fn hw_threads_per_node(&self) -> usize {
        self.cores_per_node.saturating_mul(self.hw_threads_per_core)
    }

    /// How many hardware threads end up sharing one core when `active`
    /// software threads run on a node (1 if the node is not even full).
    pub fn threads_per_core_at(&self, active: usize) -> usize {
        if self.cores_per_node == 0 || self.cores_per_node == usize::MAX {
            return 1;
        }
        active.div_ceil(self.cores_per_node).max(1)
    }

    /// Oversubscription slowdown factor: 1.0 while `active` fits in the
    /// node's hardware threads, proportional beyond (time-sharing).
    pub fn oversubscription_factor(&self, active: usize) -> f64 {
        let hw = self.hw_threads_per_node();
        if hw == 0 || hw == usize::MAX || active <= hw {
            1.0
        } else {
            active as f64 / hw as f64
        }
    }

    /// Price `work` for one thread, with `active` software threads on the
    /// node. Covers memory contention, SMT sharing and oversubscription.
    pub fn thread_seconds_for(&self, work: Work, active: usize) -> f64 {
        // Contention (memory bandwidth, SMT) is bounded by the threads
        // that actually run concurrently — the hardware thread count.
        // Software threads beyond that time-share instead, which the
        // oversubscription factor prices; feeding the raw `active` into
        // the contention model too would penalize the excess twice.
        let hw_active = active.min(self.hw_threads_per_node());
        let on_core = self.threads_per_core_at(hw_active);
        self.compute.seconds_for(work, hw_active, on_core) * self.oversubscription_factor(active)
    }

    /// Collective cost calculator for `p` participants whose world ranks
    /// may or may not span several nodes.
    pub fn collective(&self, p: usize, spans_nodes: bool) -> CollectiveCost<'_> {
        CollectiveCost {
            link: self.network.span_link(spans_nodes),
            p,
        }
    }

    /// A human-readable parameter dump, for experiment provenance (every
    /// figure's CSV should be reproducible from seed + this description).
    pub fn describe(&self) -> String {
        format!(
            "machine '{}': {} cores/node x {} hw-threads, \
             core {:.3e} flops/s (smt eff {:.2}), \
             mem {:.2e}/{:.2e} B/s (node/thread), \
             net intra(l={:.1e}s bw={:.2e} o={:.1e}) inter(l={:.1e}s bw={:.2e} o={:.1e}), \
             omp(fork {:.1e}+{:.1e}/t, barrier {:.1e}+{:.1e}/round, dyn {:.1e}/chunk), \
             noise(sigma={:.3}, net-jitter={:.1e}s)",
            self.name,
            self.cores_per_node,
            self.hw_threads_per_core,
            self.compute.core.flops_per_sec,
            self.compute.core.smt_efficiency,
            self.compute.memory.node_bandwidth,
            self.compute.memory.per_thread_bandwidth,
            self.network.intra_node.latency,
            self.network.intra_node.bandwidth,
            self.network.intra_node.overhead,
            self.network.inter_node.latency,
            self.network.inter_node.bandwidth,
            self.network.inter_node.overhead,
            self.omp.fork_base,
            self.omp.fork_per_thread,
            self.omp.barrier_base,
            self.omp.barrier_per_round,
            self.omp.dynamic_per_chunk,
            self.noise.compute_sigma,
            self.noise.net_latency_jitter_mean,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_per_core_at_counts() {
        let m = presets::knl();
        assert_eq!(m.threads_per_core_at(1), 1);
        assert_eq!(m.threads_per_core_at(68), 1);
        assert_eq!(m.threads_per_core_at(69), 2);
        assert_eq!(m.threads_per_core_at(272), 4);
    }

    #[test]
    fn oversubscription() {
        let m = presets::dual_broadwell();
        assert_eq!(m.oversubscription_factor(72), 1.0);
        assert!((m.oversubscription_factor(144) - 2.0).abs() < 1e-12);
        let ideal = presets::ideal();
        assert_eq!(ideal.oversubscription_factor(1_000_000), 1.0);
    }

    #[test]
    fn describe_mentions_key_parameters() {
        let d = presets::knl().describe();
        assert!(d.contains("knl"));
        assert!(d.contains("68 cores/node"));
        assert!(d.contains("sigma"));
    }

    #[test]
    fn thread_seconds_monotone_in_contention() {
        let m = presets::knl();
        let w = Work::new(1e9, 1e9);
        let t1 = m.thread_seconds_for(w, 1);
        let t68 = m.thread_seconds_for(w, 68);
        let t272 = m.thread_seconds_for(w, 272);
        assert!(t1 <= t68 && t68 <= t272, "{t1} {t68} {t272}");
    }
}
