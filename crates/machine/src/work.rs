//! Abstract computational work.
//!
//! Application kernels describe what they do as a [`Work`] record (floating
//! point operations and bytes of memory traffic); the machine model converts
//! that into virtual seconds with a roofline-style rule. This keeps workload
//! definitions machine-independent, which is what lets one benchmark run on
//! the Nehalem-cluster, KNL and Broadwell presets unchanged.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// A machine-independent description of a chunk of computation.
///
/// ```
/// use machine::Work;
/// // A 9-tap stencil over one RGB pixel: 54 flops, two double streams.
/// let per_pixel = Work::new(54.0, 48.0);
/// let per_row = per_pixel * 5616.0;
/// assert_eq!(per_row.flops, 54.0 * 5616.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Work {
    /// Floating-point operations executed.
    pub flops: f64,
    /// Bytes moved to/from memory (sum of reads and writes).
    pub bytes: f64,
}

impl Work {
    /// No work at all.
    pub const ZERO: Work = Work {
        flops: 0.0,
        bytes: 0.0,
    };

    /// Work consisting only of floating-point operations.
    #[inline]
    pub const fn flops(flops: f64) -> Work {
        Work { flops, bytes: 0.0 }
    }

    /// Work consisting only of memory traffic.
    #[inline]
    pub const fn bytes(bytes: f64) -> Work {
        Work { flops: 0.0, bytes }
    }

    /// Work with both components.
    #[inline]
    pub const fn new(flops: f64, bytes: f64) -> Work {
        Work { flops, bytes }
    }

    /// Arithmetic intensity in flops/byte (infinite for pure-compute work).
    #[inline]
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }

    /// True when the record describes no work.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.flops == 0.0 && self.bytes == 0.0
    }
}

impl Add for Work {
    type Output = Work;
    #[inline]
    fn add(self, rhs: Work) -> Work {
        Work {
            flops: self.flops + rhs.flops,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl AddAssign for Work {
    #[inline]
    fn add_assign(&mut self, rhs: Work) {
        self.flops += rhs.flops;
        self.bytes += rhs.bytes;
    }
}

impl Mul<f64> for Work {
    type Output = Work;
    #[inline]
    fn mul(self, rhs: f64) -> Work {
        Work {
            flops: self.flops * rhs,
            bytes: self.bytes * rhs,
        }
    }
}

impl Sum for Work {
    fn sum<I: Iterator<Item = Work>>(iter: I) -> Work {
        iter.fold(Work::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let w = Work::new(100.0, 50.0);
        assert_eq!(w.flops, 100.0);
        assert_eq!(w.bytes, 50.0);
        assert_eq!(Work::flops(3.0).bytes, 0.0);
        assert_eq!(Work::bytes(3.0).flops, 0.0);
    }

    #[test]
    fn intensity() {
        assert_eq!(Work::new(8.0, 4.0).intensity(), 2.0);
        assert!(Work::flops(8.0).intensity().is_infinite());
    }

    #[test]
    fn arithmetic() {
        let mut w = Work::new(1.0, 2.0) + Work::new(3.0, 4.0);
        assert_eq!(w, Work::new(4.0, 6.0));
        w += Work::new(1.0, 1.0);
        assert_eq!(w, Work::new(5.0, 7.0));
        assert_eq!(w * 2.0, Work::new(10.0, 14.0));
        let s: Work = [Work::flops(1.0), Work::flops(2.0)].into_iter().sum();
        assert_eq!(s, Work::flops(3.0));
    }

    #[test]
    fn zero() {
        assert!(Work::ZERO.is_zero());
        assert!(!Work::flops(1.0).is_zero());
    }
}
