//! OpenMP-style runtime overhead model.
//!
//! This is design decision D4 from DESIGN.md: a parallel region's runtime
//! cost (fork, join, barrier, dynamic-scheduling bookkeeping) grows with the
//! number of threads, while the per-thread share of the work shrinks. The
//! sum of the two produces the inflexion point the paper observes in LULESH
//! on KNL (Fig. 10): region time decreases up to ~24 threads and increases
//! beyond.

/// Overheads of the shared-memory (OpenMP-like) runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OmpModel {
    /// Fixed cost of opening a parallel region, in seconds.
    pub fork_base: f64,
    /// Additional fork cost per participating thread, in seconds
    /// (thread wake-up, argument broadcast, first-touch effects).
    pub fork_per_thread: f64,
    /// Fixed cost of the implicit end-of-region barrier, in seconds.
    pub barrier_base: f64,
    /// Barrier cost per log2(threads) round, in seconds.
    pub barrier_per_round: f64,
    /// Extra cost per chunk handed out by the dynamic scheduler, in seconds.
    pub dynamic_per_chunk: f64,
}

impl OmpModel {
    /// A runtime with zero overhead — parallel regions scale perfectly
    /// (useful for tests and the D4 ablation).
    pub const FREE: OmpModel = OmpModel {
        fork_base: 0.0,
        fork_per_thread: 0.0,
        barrier_base: 0.0,
        barrier_per_round: 0.0,
        dynamic_per_chunk: 0.0,
    };

    /// Cost of forking a region onto `threads` threads, in seconds.
    /// A single-thread "region" costs nothing: it is just a function call.
    pub fn fork_secs(&self, threads: usize) -> f64 {
        if threads <= 1 {
            return 0.0;
        }
        self.fork_base + self.fork_per_thread * threads as f64
    }

    /// Cost of the closing barrier for `threads` threads, in seconds.
    pub fn barrier_secs(&self, threads: usize) -> f64 {
        if threads <= 1 {
            return 0.0;
        }
        let rounds = (usize::BITS - (threads - 1).leading_zeros()) as f64;
        self.barrier_base + self.barrier_per_round * rounds
    }

    /// Scheduler bookkeeping for handing out `chunks` chunks dynamically.
    pub fn dynamic_secs(&self, chunks: usize) -> f64 {
        self.dynamic_per_chunk * chunks as f64
    }

    /// Total region overhead (fork + barrier) for `threads`, in seconds.
    pub fn region_secs(&self, threads: usize) -> f64 {
        self.fork_secs(threads) + self.barrier_secs(threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OmpModel {
        OmpModel {
            fork_base: 1e-6,
            fork_per_thread: 2e-7,
            barrier_base: 5e-7,
            barrier_per_round: 3e-7,
            dynamic_per_chunk: 1e-8,
        }
    }

    #[test]
    fn single_thread_free() {
        let m = model();
        assert_eq!(m.fork_secs(1), 0.0);
        assert_eq!(m.barrier_secs(1), 0.0);
        assert_eq!(m.region_secs(1), 0.0);
    }

    #[test]
    fn fork_grows_linearly() {
        let m = model();
        let f2 = m.fork_secs(2);
        let f4 = m.fork_secs(4);
        assert!((f4 - f2 - 2.0 * m.fork_per_thread).abs() < 1e-15);
    }

    #[test]
    fn barrier_grows_with_log() {
        let m = model();
        let b2 = m.barrier_secs(2); // 1 round
        let b16 = m.barrier_secs(16); // 4 rounds
        assert!((b2 - (5e-7 + 3e-7)).abs() < 1e-15);
        assert!((b16 - (5e-7 + 4.0 * 3e-7)).abs() < 1e-15);
    }

    #[test]
    fn region_inflexion_exists() {
        // With work W split across t threads plus region overhead, the total
        // W/t + region(t) must have an interior minimum: that minimum is the
        // "inflexion point" of the paper.
        let m = OmpModel {
            fork_base: 0.0,
            fork_per_thread: 1e-3,
            barrier_base: 0.0,
            barrier_per_round: 0.0,
            dynamic_per_chunk: 0.0,
        };
        let w = 0.576; // seconds of work -> t* = sqrt(W/a) = 24
        let time = |t: usize| w / t as f64 + m.region_secs(t);
        let best = (1..=256).min_by(|&a, &b| time(a).partial_cmp(&time(b)).unwrap());
        assert_eq!(best, Some(24));
        assert!(time(48) > time(24));
    }

    #[test]
    fn free_model_is_free() {
        assert_eq!(OmpModel::FREE.region_secs(256), 0.0);
        assert_eq!(OmpModel::FREE.dynamic_secs(1_000_000), 0.0);
    }

    #[test]
    fn dynamic_scheduling_cost() {
        let m = model();
        assert!((m.dynamic_secs(100) - 1e-6).abs() < 1e-18);
    }
}
