//! Rank-to-node placement.
//!
//! The simulated cluster places MPI ranks onto nodes in contiguous blocks
//! (the common `--map-by core` layout): ranks `0..c-1` on node 0, `c..2c-1`
//! on node 1, and so on, where `c` is the number of rank slots per node.

/// Placement of ranks onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of rank slots per node (cores per node for MPI-everywhere
    /// runs; fewer when each rank also hosts threads).
    pub ranks_per_node: usize,
}

impl Topology {
    /// All ranks on a single node (shared-memory machine).
    pub const SINGLE_NODE: Topology = Topology {
        ranks_per_node: usize::MAX,
    };

    /// Create a block placement with `ranks_per_node` slots per node.
    /// A value of 0 is treated as 1.
    pub fn block(ranks_per_node: usize) -> Topology {
        Topology {
            ranks_per_node: ranks_per_node.max(1),
        }
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node.max(1)
    }

    /// Number of nodes used by `nranks` ranks.
    pub fn nodes_for(&self, nranks: usize) -> usize {
        if nranks == 0 {
            0
        } else {
            (nranks - 1) / self.ranks_per_node.max(1) + 1
        }
    }

    /// True when two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// True when the given world ranks span more than one node.
    pub fn spans_nodes(&self, ranks: &[usize]) -> bool {
        match ranks.first() {
            None => false,
            Some(&first) => {
                let n0 = self.node_of(first);
                ranks.iter().any(|&r| self.node_of(r) != n0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_mapping() {
        let t = Topology::block(8);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(7), 0);
        assert_eq!(t.node_of(8), 1);
        assert_eq!(t.node_of(63), 7);
        assert!(t.same_node(0, 7));
        assert!(!t.same_node(7, 8));
    }

    #[test]
    fn nodes_for_counts() {
        let t = Topology::block(8);
        assert_eq!(t.nodes_for(0), 0);
        assert_eq!(t.nodes_for(1), 1);
        assert_eq!(t.nodes_for(8), 1);
        assert_eq!(t.nodes_for(9), 2);
        assert_eq!(t.nodes_for(456), 57);
    }

    #[test]
    fn single_node_never_spans() {
        let t = Topology::SINGLE_NODE;
        let ranks: Vec<usize> = (0..1000).collect();
        assert!(!t.spans_nodes(&ranks));
        assert!(t.same_node(0, 999));
    }

    #[test]
    fn spans_detection() {
        let t = Topology::block(4);
        assert!(!t.spans_nodes(&[0, 1, 2, 3]));
        assert!(t.spans_nodes(&[0, 1, 2, 3, 4]));
        assert!(t.spans_nodes(&[3, 4]));
        assert!(!t.spans_nodes(&[]));
    }

    #[test]
    fn zero_is_clamped() {
        let t = Topology::block(0);
        assert_eq!(t.ranks_per_node, 1);
        assert_eq!(t.node_of(5), 5);
    }
}
