//! Deterministic performance noise.
//!
//! The paper's convolution experiment hinges on an observation that is easy
//! to destroy with a naive simulator: halo-exchange time *grows* with the
//! number of processes even though the per-process message size is constant,
//! because per-step compute jitter propagates through neighbour dependencies
//! and accumulates over 1000 time steps (Fig. 5b). We therefore model
//! compute-time jitter as a multiplicative lognormal factor and network
//! latency jitter as an additive exponential term.
//!
//! Every random stream is derived from `(seed, rank, stream)` with a SplitMix
//! mix, so a run is reproducible regardless of OS-thread interleaving: each
//! simulated rank consumes only its own stream in program order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer — used to turn `(seed, rank, stream)` into an
/// independent, well-mixed 64-bit seed.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combine a global seed with per-entity identifiers into a stream seed.
#[inline]
pub fn stream_seed(seed: u64, rank: u64, stream: u64) -> u64 {
    mix64(mix64(seed ^ mix64(rank)) ^ mix64(stream.wrapping_mul(0x0dd5_53cc_a9d5_2d2d)))
}

/// A deterministic per-rank random stream.
///
/// Thin wrapper over `StdRng` so call sites do not depend on the `rand`
/// version directly and so seeding policy lives in one place.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Stream for `(seed, rank, stream)`.
    pub fn for_stream(seed: u64, rank: u64, stream: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(stream_seed(seed, rank, stream)),
        }
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal via Box–Muller (we avoid the `rand_distr` crate).
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        // Reject u1 == 0 so the log is finite.
        let mut u1 = self.uniform();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Exponential with the given mean (zero mean yields exactly zero).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let mut u = self.uniform();
        while u <= f64::MIN_POSITIVE {
            u = self.uniform();
        }
        -mean * u.ln()
    }

    /// Random u64 (for sub-seeding).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }
}

/// Jitter configuration for a machine model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Sigma of the lognormal multiplier applied to compute durations
    /// (0 disables compute jitter; 0.02–0.08 is typical of real nodes).
    pub compute_sigma: f64,
    /// Mean of the additive exponential latency jitter, in seconds
    /// (0 disables network jitter).
    pub net_latency_jitter_mean: f64,
}

impl NoiseModel {
    /// Completely noise-free execution (ablation A1 / deterministic tests).
    pub const NONE: NoiseModel = NoiseModel {
        compute_sigma: 0.0,
        net_latency_jitter_mean: 0.0,
    };

    /// Multiplicative factor for one compute interval.
    ///
    /// Lognormal with median 1: `exp(sigma * N(0,1))`. Median (rather than
    /// mean) preservation keeps the *typical* run time calibrated while the
    /// heavy right tail produces straggler behaviour.
    #[inline]
    pub fn compute_factor(&self, rng: &mut DetRng) -> f64 {
        if self.compute_sigma <= 0.0 {
            1.0
        } else {
            (self.compute_sigma * rng.standard_normal()).exp()
        }
    }

    /// Additive latency jitter for one message, in seconds.
    #[inline]
    pub fn latency_jitter(&self, rng: &mut DetRng) -> f64 {
        rng.exponential(self.net_latency_jitter_mean)
    }

    /// True when both components are disabled.
    pub fn is_none(&self) -> bool {
        self.compute_sigma <= 0.0 && self.net_latency_jitter_mean <= 0.0
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = DetRng::for_stream(42, 3, 7);
        let mut b = DetRng::for_stream(42, 3, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ_across_ranks_and_streams() {
        let mut a = DetRng::for_stream(42, 0, 0);
        let mut b = DetRng::for_stream(42, 1, 0);
        let mut c = DetRng::for_stream(42, 0, 1);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(x, y);
        assert_ne!(x, z);
        assert_ne!(y, z);
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = DetRng::for_stream(1, 0, 0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = DetRng::for_stream(2, 0, 0);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean {mean}");
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-1.0), 0.0);
    }

    #[test]
    fn none_noise_is_identity() {
        let mut rng = DetRng::for_stream(3, 0, 0);
        assert_eq!(NoiseModel::NONE.compute_factor(&mut rng), 1.0);
        assert_eq!(NoiseModel::NONE.latency_jitter(&mut rng), 0.0);
        assert!(NoiseModel::NONE.is_none());
    }

    #[test]
    fn lognormal_median_near_one() {
        let noise = NoiseModel {
            compute_sigma: 0.05,
            net_latency_jitter_mean: 0.0,
        };
        let mut rng = DetRng::for_stream(4, 0, 0);
        let mut samples: Vec<f64> = (0..10_001)
            .map(|_| noise.compute_factor(&mut rng))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5_000];
        assert!((median - 1.0).abs() < 0.01, "median {median}");
        assert!(samples.iter().all(|&f| f > 0.0));
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = DetRng::for_stream(5, 0, 0);
        for _ in 0..1000 {
            let x = rng.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }
}
