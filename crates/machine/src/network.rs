//! Network model: point-to-point transfer costs and collective cost formulas.
//!
//! The model is LogGP-flavoured: a message costs a CPU overhead `o` on each
//! side, a wire latency `l`, and a serialization term `bytes / bandwidth`.
//! Two parameter sets exist — intra-node (shared memory) and inter-node
//! (interconnect) — chosen per message from the communicating ranks' node
//! placement. Collectives use standard tree/linear formulas on top.

/// One set of LogGP-ish link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// One-way wire latency in seconds.
    pub latency: f64,
    /// Bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Per-message CPU overhead (each side) in seconds.
    pub overhead: f64,
}

impl LinkModel {
    /// An idealized link with zero cost (ablation A2).
    pub const FREE: LinkModel = LinkModel {
        latency: 0.0,
        bandwidth: f64::INFINITY,
        overhead: 0.0,
    };

    /// End-to-end transfer time for a message of `bytes` (excluding any
    /// jitter, which the runtime adds separately).
    #[inline]
    pub fn transfer_secs(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// Full network model of a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Link used between ranks on the same node.
    pub intra_node: LinkModel,
    /// Link used between ranks on different nodes.
    pub inter_node: LinkModel,
}

impl NetworkModel {
    /// A network where all communication is free (ablation A2).
    pub const FREE: NetworkModel = NetworkModel {
        intra_node: LinkModel::FREE,
        inter_node: LinkModel::FREE,
    };

    /// The link connecting two ranks given their node ids.
    #[inline]
    pub fn link(&self, node_a: usize, node_b: usize) -> &LinkModel {
        if node_a == node_b {
            &self.intra_node
        } else {
            &self.inter_node
        }
    }

    /// The slower (inter-node) link if the set of nodes spans more than one
    /// node, else the intra-node link. Collectives on a communicator use
    /// this as their per-hop link.
    #[inline]
    pub fn span_link(&self, spans_nodes: bool) -> &LinkModel {
        if spans_nodes {
            &self.inter_node
        } else {
            &self.intra_node
        }
    }
}

/// Number of tree rounds for `p` participants: ceil(log2 p), 0 for p <= 1.
#[inline]
pub fn tree_rounds(p: usize) -> u32 {
    if p <= 1 {
        0
    } else {
        usize::BITS - (p - 1).leading_zeros()
    }
}

/// Cost formulas for the collectives the runtime implements. All return
/// seconds and assume the operation starts once every participant arrived;
/// the runtime handles the arrival synchronization itself.
#[derive(Debug, Clone, Copy)]
pub struct CollectiveCost<'a> {
    pub link: &'a LinkModel,
    /// Number of participants.
    pub p: usize,
}

impl CollectiveCost<'_> {
    fn hop(&self, bytes: usize) -> f64 {
        2.0 * self.link.overhead + self.link.transfer_secs(bytes)
    }

    /// Dissemination barrier: ceil(log2 p) rounds of empty messages.
    pub fn barrier(&self) -> f64 {
        tree_rounds(self.p) as f64 * self.hop(0)
    }

    /// Binomial-tree broadcast of `bytes` per destination.
    pub fn bcast(&self, bytes: usize) -> f64 {
        tree_rounds(self.p) as f64 * self.hop(bytes)
    }

    /// Reduce: same communication structure as broadcast, reversed.
    pub fn reduce(&self, bytes: usize) -> f64 {
        self.bcast(bytes)
    }

    /// Allreduce: reduce + broadcast.
    pub fn allreduce(&self, bytes: usize) -> f64 {
        2.0 * self.bcast(bytes)
    }

    /// Scatter of `total_bytes` from the root: the root serializes all data
    /// once (root-bound linear term) plus a tree latency component.
    pub fn scatter(&self, total_bytes: usize) -> f64 {
        tree_rounds(self.p) as f64 * self.hop(0) + self.link.transfer_secs(total_bytes)
            - self.link.latency
    }

    /// Gather to the root: symmetric to scatter.
    pub fn gather(&self, total_bytes: usize) -> f64 {
        self.scatter(total_bytes)
    }

    /// Allgather: ring — (p-1) rounds each moving `bytes_per_rank`.
    pub fn allgather(&self, bytes_per_rank: usize) -> f64 {
        if self.p <= 1 {
            return 0.0;
        }
        (self.p - 1) as f64 * self.hop(bytes_per_rank)
    }

    /// All-to-all: (p-1) pairwise exchanges of `bytes_per_pair`.
    pub fn alltoall(&self, bytes_per_pair: usize) -> f64 {
        if self.p <= 1 {
            return 0.0;
        }
        (self.p - 1) as f64 * self.hop(bytes_per_pair)
    }

    /// Exclusive/inclusive scan: tree depth rounds, like reduce.
    pub fn scan(&self, bytes: usize) -> f64 {
        self.reduce(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkModel {
        LinkModel {
            latency: 2e-6,
            bandwidth: 1e9,
            overhead: 5e-7,
        }
    }

    #[test]
    fn transfer_components() {
        let l = link();
        let t = l.transfer_secs(1_000_000);
        assert!((t - (2e-6 + 1e-3)).abs() < 1e-12);
        assert_eq!(LinkModel::FREE.transfer_secs(1 << 30), 0.0);
    }

    #[test]
    fn tree_rounds_values() {
        assert_eq!(tree_rounds(0), 0);
        assert_eq!(tree_rounds(1), 0);
        assert_eq!(tree_rounds(2), 1);
        assert_eq!(tree_rounds(3), 2);
        assert_eq!(tree_rounds(4), 2);
        assert_eq!(tree_rounds(5), 3);
        assert_eq!(tree_rounds(8), 3);
        assert_eq!(tree_rounds(9), 4);
        assert_eq!(tree_rounds(456), 9);
    }

    #[test]
    fn link_selection() {
        let net = NetworkModel {
            intra_node: LinkModel::FREE,
            inter_node: link(),
        };
        assert_eq!(net.link(3, 3), &LinkModel::FREE);
        assert_eq!(net.link(3, 4), &link());
        assert_eq!(net.span_link(false), &LinkModel::FREE);
        assert_eq!(net.span_link(true), &link());
    }

    #[test]
    fn barrier_grows_logarithmically() {
        let l = link();
        let c2 = CollectiveCost { link: &l, p: 2 }.barrier();
        let c4 = CollectiveCost { link: &l, p: 4 }.barrier();
        let c256 = CollectiveCost { link: &l, p: 256 }.barrier();
        assert!((c4 / c2 - 2.0).abs() < 1e-9);
        assert!((c256 / c2 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let l = link();
        let c = CollectiveCost { link: &l, p: 1 };
        assert_eq!(c.barrier(), 0.0);
        assert_eq!(c.bcast(1_000_000), 0.0);
        assert_eq!(c.allgather(100), 0.0);
        assert_eq!(c.alltoall(100), 0.0);
    }

    #[test]
    fn scatter_dominated_by_root_serialization() {
        let l = link();
        let c = CollectiveCost { link: &l, p: 64 };
        let t = c.scatter(500_000_000); // 0.5 GB at 1 GB/s -> ~0.5 s
        assert!(t > 0.5 && t < 0.51, "{t}");
    }

    #[test]
    fn allreduce_is_twice_bcast() {
        let l = link();
        let c = CollectiveCost { link: &l, p: 16 };
        assert!((c.allreduce(4096) - 2.0 * c.bcast(4096)).abs() < 1e-15);
    }
}
