//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the *tiny* slice of `rand`'s API it actually consumes: a seedable
//! deterministic generator ([`rngs::StdRng`]) and the [`Rng::gen`] /
//! [`SeedableRng::seed_from_u64`] entry points. The generator is
//! xoshiro256++ (public domain reference constants), which passes the usual
//! statistical batteries and is plenty for simulation noise streams — the
//! repo's noise layer (`machine::noise`) only relies on determinism and
//! uniformity, never on matching upstream `rand`'s exact stream.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled from the "standard" distribution of the real
/// `rand` crate: uniform over the full range for integers, uniform in
/// `[0, 1)` for floats, fair coin for `bool`.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the full 53-bit mantissa, like `rand`.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with the full 24-bit mantissa.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256++) standing in for
    /// `rand::rngs::StdRng`. Not cryptographically secure — neither caller
    /// in this workspace needs that.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn bools_are_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues}");
    }
}
