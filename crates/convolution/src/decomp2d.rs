//! 2-D (tile) domain decomposition of the convolution benchmark.
//!
//! The paper's benchmark splits 1-D ("when splitting in 1D as done in this
//! benchmark, the number of halo-cells is constant"); its §3 argues that
//! higher-dimensional decompositions trade communication volume against
//! memory per rank. This module implements the 2-D variant with full
//! 8-neighbour halo exchange (the 3×3 stencil needs the diagonal corner
//! cells too), bit-exact against the sequential reference, so the 1-D/2-D
//! comparison of the `halo` module can be validated by execution.

use crate::bench::{partition_rows, ConvConfig, ConvOutcome, Fidelity};
use crate::image::{Image, CHANNELS};
use crate::stencil::{codec_work, convolve_work};
use mpi_sections::SectionRuntime;
use mpisim::{dims_create, CartGrid, Proc, Src, TagSel};

/// The eight halo directions, as (drow, dcol).
const DIRS: [(isize, isize); 8] = [
    (-1, 0),
    (1, 0),
    (0, -1),
    (0, 1),
    (-1, -1),
    (-1, 1),
    (1, -1),
    (1, 1),
];

fn opposite(dir: usize) -> usize {
    match dir {
        0 => 1,
        1 => 0,
        2 => 3,
        3 => 2,
        4 => 7,
        5 => 6,
        6 => 5,
        7 => 4,
        _ => unreachable!(),
    }
}

const TAG_BASE: i32 = 400;

/// This rank's tile: its pixel rectangle within the global image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    pub row_start: usize,
    pub row_end: usize,
    pub col_start: usize,
    pub col_end: usize,
}

impl Tile {
    /// Tile of local rank `rank` on a `grid` over a `width`×`height` image.
    pub fn of(grid: &CartGrid, rank: usize, width: usize, height: usize) -> Tile {
        let coords = grid.coords_of(rank);
        let (grows, gcols) = (grid.dims()[0], grid.dims()[1]);
        let (row_start, row_end) = partition_rows(height, grows, coords[0]);
        let (col_start, col_end) = partition_rows(width, gcols, coords[1]);
        Tile {
            row_start,
            row_end,
            col_start,
            col_end,
        }
    }

    pub fn rows(&self) -> usize {
        self.row_end - self.row_start
    }

    pub fn cols(&self) -> usize {
        self.col_end - self.col_start
    }

    pub fn pixels(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Samples (pixels × channels).
    pub fn samples(&self) -> usize {
        self.pixels() * CHANNELS
    }
}

/// Extract a tile's pixels from the full image (row-major within the
/// tile, channel-interleaved).
pub fn extract_tile(img: &Image, tile: &Tile) -> Vec<f64> {
    let mut out = Vec::with_capacity(tile.samples());
    for y in tile.row_start..tile.row_end {
        let row = &img.data[(y * img.width + tile.col_start) * CHANNELS
            ..(y * img.width + tile.col_end) * CHANNELS];
        out.extend_from_slice(row);
    }
    out
}

/// The edge (or corner) of a tile buffer to send in a given direction.
fn edge_of(tile: &[f64], rows: usize, cols: usize, dir: usize) -> Vec<f64> {
    let stride = cols * CHANNELS;
    let row = |r: usize| &tile[r * stride..(r + 1) * stride];
    let col = |c: usize| -> Vec<f64> {
        (0..rows)
            .flat_map(|r| tile[(r * cols + c) * CHANNELS..(r * cols + c + 1) * CHANNELS].to_vec())
            .collect()
    };
    let px = |r: usize, c: usize| {
        tile[(r * cols + c) * CHANNELS..(r * cols + c + 1) * CHANNELS].to_vec()
    };
    match DIRS[dir] {
        (-1, 0) => row(0).to_vec(),
        (1, 0) => row(rows - 1).to_vec(),
        (0, -1) => col(0),
        (0, 1) => col(cols - 1),
        (-1, -1) => px(0, 0),
        (-1, 1) => px(0, cols - 1),
        (1, -1) => px(rows - 1, 0),
        (1, 1) => px(rows - 1, cols - 1),
        _ => unreachable!(),
    }
}

/// Logical element count of a direction's halo message.
fn edge_elems(rows: usize, cols: usize, dir: usize) -> usize {
    match DIRS[dir] {
        (0, _) => rows * CHANNELS,
        (_, 0) => cols * CHANNELS,
        _ => CHANNELS,
    }
}

/// Build the (rows+2)×(cols+2) expanded tile from the tile plus received
/// halos, clamping edges where no neighbour exists (global border).
fn expand_tile(tile: &[f64], rows: usize, cols: usize, halos: &[Option<Vec<f64>>; 8]) -> Vec<f64> {
    let ecols = cols + 2;
    let erows = rows + 2;
    let mut out = vec![0.0f64; erows * ecols * CHANNELS];
    let src = |r: usize, c: usize| &tile[(r * cols + c) * CHANNELS..(r * cols + c + 1) * CHANNELS];
    // A closure writing one pixel of the expanded buffer.
    let mut put = |er: usize, ec: usize, px: &[f64]| {
        out[(er * ecols + ec) * CHANNELS..(er * ecols + ec + 1) * CHANNELS].copy_from_slice(px);
    };
    // Interior.
    for r in 0..rows {
        for c in 0..cols {
            put(r + 1, c + 1, src(r, c));
        }
    }
    // Edges: halo if present, else clamp to the tile's own border.
    for c in 0..cols {
        let top = halos[0]
            .as_deref()
            .map(|h| &h[c * CHANNELS..(c + 1) * CHANNELS])
            .unwrap_or_else(|| src(0, c));
        put(0, c + 1, top);
        let bottom = halos[1]
            .as_deref()
            .map(|h| &h[c * CHANNELS..(c + 1) * CHANNELS])
            .unwrap_or_else(|| src(rows - 1, c));
        put(rows + 1, c + 1, bottom);
    }
    for r in 0..rows {
        let left = halos[2]
            .as_deref()
            .map(|h| &h[r * CHANNELS..(r + 1) * CHANNELS])
            .unwrap_or_else(|| src(r, 0));
        put(r + 1, 0, left);
        let right = halos[3]
            .as_deref()
            .map(|h| &h[r * CHANNELS..(r + 1) * CHANNELS])
            .unwrap_or_else(|| src(r, cols - 1));
        put(r + 1, cols + 1, right);
    }
    // Corners: diagonal halo if present, else clamp like the reference
    // does (the clamped sample equals the nearest in-image pixel; when an
    // orthogonal neighbour exists but the diagonal does not, the correct
    // clamp is that neighbour's edge cell — copy from the already-filled
    // expanded edges, which hold exactly that).
    type CornerCase = (usize, usize, usize, (usize, usize), (usize, usize));
    let corner_cases: [CornerCase; 4] = [
        // (dir, expanded row, expanded col, vertical fallback, horizontal fallback)
        (4, 0, 0, (0, 1), (1, 0)),
        (5, 0, cols + 1, (0, cols), (1, cols + 1)),
        (6, rows + 1, 0, (rows + 1, 1), (rows, 0)),
        (7, rows + 1, cols + 1, (rows + 1, cols), (rows, cols + 1)),
    ];
    for (dir, er, ec, vfall, hfall) in corner_cases {
        let px: Vec<f64> = if let Some(h) = halos[dir].as_deref() {
            h.to_vec()
        } else {
            // No diagonal neighbour. Clamp: prefer the vertical neighbour's
            // value (already in the expanded top/bottom edge) if the
            // vertical side exists, else the horizontal, else own corner.
            let has_vertical = halos[if DIRS[dir].0 < 0 { 0 } else { 1 }].is_some();
            let has_horizontal = halos[if DIRS[dir].1 < 0 { 2 } else { 3 }].is_some();
            let (fr, fc) = if has_vertical && has_horizontal {
                // Both orthogonal neighbours exist but the diagonal rank
                // is missing — impossible on a full grid.
                unreachable!("full grid: diagonal must exist");
            } else if has_vertical {
                vfall
            } else if has_horizontal {
                hfall
            } else {
                // Global corner: clamp to own corner pixel (already at the
                // adjacent interior position).
                (
                    if DIRS[dir].0 < 0 { 1 } else { rows },
                    if DIRS[dir].1 < 0 { 1 } else { cols },
                )
            };
            out[(fr * ecols + fc) * CHANNELS..(fr * ecols + fc + 1) * CHANNELS].to_vec()
        };
        out[(er * ecols + ec) * CHANNELS..(er * ecols + ec + 1) * CHANNELS].copy_from_slice(&px);
    }
    out
}

/// Convolve the interior of an expanded tile (3×3 mean filter).
fn convolve_expanded(expanded: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    let ecols = cols + 2;
    let mut out = vec![0.0f64; rows * cols * CHANNELS];
    for r in 0..rows {
        for c in 0..cols {
            for ch in 0..CHANNELS {
                let mut acc = 0.0;
                for dr in 0..3 {
                    for dc in 0..3 {
                        acc += expanded[((r + dr) * ecols + (c + dc)) * CHANNELS + ch];
                    }
                }
                out[(r * cols + c) * CHANNELS + ch] = acc / 9.0;
            }
        }
    }
    out
}

/// Run the convolution benchmark on a 2-D tile decomposition. Requires the
/// process grid to fit the image (`grid rows <= height`, `grid cols <=
/// width`). Section structure is identical to the 1-D variant.
pub fn run_convolution_2d(
    p: &mut Proc,
    sections: &SectionRuntime,
    cfg: &ConvConfig,
) -> ConvOutcome {
    let world = p.world();
    let nranks = world.size();
    let rank = world.rank();
    let dims = dims_create(nranks, 2);
    let grid = CartGrid::new(dims.clone());
    assert!(
        dims[0] <= cfg.height && dims[1] <= cfg.width,
        "2-D decomposition: process grid {dims:?} does not fit {}x{}",
        cfg.width,
        cfg.height
    );
    let tile = Tile::of(&grid, rank, cfg.width, cfg.height);
    let coords = grid.coords_of(rank);
    let neighbor = |dir: usize| -> Option<usize> {
        let (dr, dc) = DIRS[dir];
        let nr = coords[0] as isize + dr;
        let nc = coords[1] as isize + dc;
        (nr >= 0 && (nr as usize) < dims[0] && nc >= 0 && (nc as usize) < dims[1])
            .then(|| grid.rank_of(&[nr as usize, nc as usize]))
    };

    // ---- LOAD ------------------------------------------------------------
    let mut full_image: Option<Image> = None;
    sections.scoped(p, &world, crate::bench::SECTION_LOAD, |p| {
        if rank == 0 {
            if cfg.fidelity == Fidelity::Full {
                full_image = Some(Image::synthetic(cfg.width, cfg.height));
            }
            p.compute(codec_work(cfg.samples()));
        }
    });

    // ---- SCATTER ----------------------------------------------------------
    let mut data: Vec<f64> = Vec::new();
    sections.scoped(p, &world, crate::bench::SECTION_SCATTER, |p| {
        match cfg.fidelity {
            Fidelity::Full => {
                let chunks = (rank == 0).then(|| {
                    let img = full_image.as_ref().expect("root loaded");
                    (0..nranks)
                        .map(|r| extract_tile(img, &Tile::of(&grid, r, cfg.width, cfg.height)))
                        .collect::<Vec<_>>()
                });
                data = world.scatterv(p, 0, chunks);
            }
            Fidelity::Timing => {
                let counts = (rank == 0).then(|| {
                    (0..nranks)
                        .map(|r| Tile::of(&grid, r, cfg.width, cfg.height).samples())
                        .collect()
                });
                let _ = world.scatterv_virtual::<f64>(p, 0, counts);
            }
        }
    });

    let (rows, cols) = (tile.rows(), tile.cols());
    for _step in 0..cfg.steps {
        let mut halos: [Option<Vec<f64>>; 8] = Default::default();
        sections.scoped(p, &world, crate::bench::SECTION_HALO, |p| {
            #[allow(clippy::needless_range_loop)] // dir indexes DIRS and halos
            for dir in 0..8 {
                if let Some(nbr) = neighbor(dir) {
                    let my_tag = TAG_BASE + dir as i32;
                    let their_tag = TAG_BASE + opposite(dir) as i32;
                    match cfg.fidelity {
                        Fidelity::Full => {
                            let mine = edge_of(&data, rows, cols, dir);
                            let got = world.sendrecv(
                                p,
                                nbr,
                                my_tag,
                                &mine,
                                Src::Rank(nbr),
                                TagSel::Is(their_tag),
                            );
                            halos[dir] = Some(got.data);
                        }
                        Fidelity::Timing => {
                            let _ = world.sendrecv_virtual::<f64>(
                                p,
                                nbr,
                                my_tag,
                                edge_elems(rows, cols, dir),
                                Src::Rank(nbr),
                                TagSel::Is(their_tag),
                            );
                        }
                    }
                }
            }
        });
        sections.scoped(p, &world, crate::bench::SECTION_CONVOLVE, |p| {
            if tile.pixels() > 0 {
                if cfg.fidelity == Fidelity::Full {
                    let expanded = expand_tile(&data, rows, cols, &halos);
                    data = convolve_expanded(&expanded, rows, cols);
                }
                p.compute(convolve_work(tile.samples()));
            }
        });
    }

    // ---- GATHER -----------------------------------------------------------
    let mut outcome = ConvOutcome::default();
    sections.scoped(p, &world, crate::bench::SECTION_GATHER, |p| {
        match cfg.fidelity {
            Fidelity::Full => {
                let all = world.gatherv(p, 0, std::mem::take(&mut data));
                if rank == 0 {
                    let mut img = Image::zeros(cfg.width, cfg.height);
                    for (r, chunk) in all.into_iter().enumerate() {
                        let t = Tile::of(&grid, r, cfg.width, cfg.height);
                        for (i, row) in (t.row_start..t.row_end).enumerate() {
                            let src =
                                &chunk[i * t.cols() * CHANNELS..(i + 1) * t.cols() * CHANNELS];
                            let at = (row * cfg.width + t.col_start) * CHANNELS;
                            img.data[at..at + src.len()].copy_from_slice(src);
                        }
                    }
                    outcome.checksum = Some(img.checksum());
                    outcome.image = Some(img);
                }
            }
            Fidelity::Timing => {
                let _ = world.gatherv_virtual::<f64>(p, 0, tile.samples());
            }
        }
    });

    // ---- STORE ------------------------------------------------------------
    sections.scoped(p, &world, crate::bench::SECTION_STORE, |p| {
        if rank == 0 {
            p.compute(codec_work(cfg.samples()));
            if let (Some(path), Some(img)) = (&cfg.store_path, &outcome.image) {
                img.write_ppm(path).expect("store the result image");
            }
        }
    });

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sections::{SectionRuntime, VerifyMode};
    use mpisim::WorldBuilder;
    use std::sync::Arc;

    fn run(nranks: usize, cfg: ConvConfig) -> ConvOutcome {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        let cfg = Arc::new(cfg);
        WorldBuilder::new(nranks)
            .machine(machine::presets::nehalem_cluster())
            .seed(17)
            .run(move |p| run_convolution_2d(p, &s, &cfg))
            .unwrap()
            .results
            .remove(0)
    }

    #[test]
    fn tiles_partition_the_image() {
        let grid = CartGrid::new(dims_create(6, 2));
        let (w, h) = (13, 11);
        let mut covered = vec![0u8; w * h];
        for r in 0..6 {
            let t = Tile::of(&grid, r, w, h);
            for y in t.row_start..t.row_end {
                for x in t.col_start..t.col_end {
                    covered[y * w + x] += 1;
                }
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn distributed_2d_matches_reference_exactly() {
        for (w, h, steps, nranks) in [
            (17, 13, 3, 4),
            (16, 16, 2, 9),
            (10, 20, 2, 6),
            (12, 12, 4, 1),
        ] {
            let reference = Image::synthetic(w, h).mean_filter(steps);
            let outcome = run(nranks, ConvConfig::small(w, h, steps));
            assert_eq!(
                outcome.image.unwrap().data,
                reference.data,
                "w={w} h={h} steps={steps} p={nranks}"
            );
        }
    }

    #[test]
    fn timing_mode_runs_cleanly() {
        let mut cfg = ConvConfig::small(24, 24, 3);
        cfg.fidelity = Fidelity::Timing;
        let outcome = run(9, cfg);
        assert!(outcome.image.is_none());
    }

    #[test]
    fn edge_extraction_shapes() {
        // 2x3 tile with recognizable values.
        let tile: Vec<f64> = (0..2 * 3 * CHANNELS).map(|x| x as f64).collect();
        assert_eq!(edge_of(&tile, 2, 3, 0).len(), 3 * CHANNELS); // top row
        assert_eq!(edge_of(&tile, 2, 3, 2).len(), 2 * CHANNELS); // left col
        assert_eq!(edge_of(&tile, 2, 3, 4).len(), CHANNELS); // corner
        assert_eq!(edge_elems(2, 3, 0), 3 * CHANNELS);
        assert_eq!(edge_elems(2, 3, 3), 2 * CHANNELS);
        assert_eq!(edge_elems(2, 3, 7), CHANNELS);
    }

    #[test]
    fn opposite_directions_pair_up() {
        for dir in 0..8 {
            assert_eq!(opposite(opposite(dir)), dir);
            let (dr, dc) = DIRS[dir];
            let (or, oc) = DIRS[opposite(dir)];
            assert_eq!((dr, dc), (-or, -oc));
        }
    }
}
