//! Halo-cell accounting — the paper's §3 argument made quantitative.
//!
//! "For stencil-based simulations, it is known that the halo-cells ratio
//! directly linked with communication size is smaller for large memory
//! areas. Unfortunately, higher dimension domain decompositions require
//! larger local domains to minimize this memory overhead."
//!
//! These functions compute, for a cubic/rectangular domain split over `p`
//! ranks in 1, 2 or 3 dimensions with a unit-radius stencil, the per-rank
//! ghost-cell count, the ghost/owned ratio (communication-to-computation
//! surface) and the bytes exchanged per step — the numbers behind the
//! `halo-ratio` experiment target.

use mpisim::dims_create;

/// Ghost cells of a local block with the given extents (unit-radius
/// stencil, faces + edges + corners — i.e. the full enclosing shell),
/// counting only sides that have a neighbour (`open` flags per dimension
/// side are simplified to "interior rank": all sides open).
pub fn shell_cells(extents: &[usize]) -> usize {
    // Shell = prod(e_i + 2) - prod(e_i).
    let inner: usize = extents.iter().product();
    let outer: usize = extents.iter().map(|e| e + 2).product();
    outer - inner
}

/// Per-rank decomposition extents for a cubic domain of `n` cells per side
/// split over `p` ranks in `ndims` dimensions (remaining dimensions keep
/// the full extent). Uses balanced factorization; extents are the *ceiling*
/// block sizes (the largest rank's block).
pub fn block_extents(n: usize, p: usize, ndims: usize, domain_dims: usize) -> Vec<usize> {
    assert!(ndims <= domain_dims);
    let dims = dims_create(p, ndims);
    let mut extents = vec![n; domain_dims];
    for (i, &d) in dims.iter().enumerate() {
        extents[i] = n.div_ceil(d);
    }
    extents
}

/// Ghost/owned ratio for the interior rank of such a decomposition.
///
/// ```
/// // A 96-cubed domain over 64 ranks: the 3-D block decomposition needs
/// // far fewer ghosts per owned cell than the 1-D slab (the paper's §3).
/// let slab = convolution::ghost_ratio(96, 64, 1, 3);
/// let block = convolution::ghost_ratio(96, 64, 3, 3);
/// assert!(block < slab / 3.0);
/// ```
pub fn ghost_ratio(n: usize, p: usize, ndims: usize, domain_dims: usize) -> f64 {
    let extents = block_extents(n, p, ndims, domain_dims);
    let owned: usize = extents.iter().product();
    if owned == 0 {
        return 0.0;
    }
    shell_cells(&extents) as f64 / owned as f64
}

/// Bytes exchanged per step per interior rank (ghost shell × cell bytes).
pub fn halo_bytes_per_step(
    n: usize,
    p: usize,
    ndims: usize,
    domain_dims: usize,
    cell_bytes: usize,
) -> usize {
    let extents = block_extents(n, p, ndims, domain_dims);
    shell_cells(&extents) * cell_bytes
}

/// One row of the §3 comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloRow {
    pub p: usize,
    pub ndims: usize,
    /// Local block extents.
    pub extents: Vec<usize>,
    /// Owned cells per rank.
    pub owned: usize,
    /// Ghost cells per rank.
    pub ghosts: usize,
    /// Ghost/owned ratio.
    pub ratio: f64,
}

/// Build the comparison table for a `domain_dims`-dimensional cubic domain
/// of side `n`, across process counts and decomposition dimensionalities.
pub fn halo_table(n: usize, ps: &[usize], domain_dims: usize) -> Vec<HaloRow> {
    let mut rows = Vec::new();
    for &p in ps {
        for ndims in 1..=domain_dims {
            let extents = block_extents(n, p, ndims, domain_dims);
            let owned: usize = extents.iter().product();
            let ghosts = shell_cells(&extents);
            rows.push(HaloRow {
                p,
                ndims,
                ratio: ghosts as f64 / owned.max(1) as f64,
                extents,
                owned,
                ghosts,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell_counts() {
        // 1-D segment of 10 cells: shell = 12 - 10 = 2.
        assert_eq!(shell_cells(&[10]), 2);
        // 2-D 4x4: 36 - 16 = 20.
        assert_eq!(shell_cells(&[4, 4]), 20);
        // 3-D 2x2x2: 64 - 8 = 56.
        assert_eq!(shell_cells(&[2, 2, 2]), 56);
    }

    #[test]
    fn higher_dim_decomposition_reduces_ghosts_at_scale() {
        // 3-D domain of 96³ over 64 ranks: slab (1-D) vs pencil (2-D) vs
        // block (3-D) decomposition. Blocks must have the smallest shell.
        let n = 96;
        let p = 64;
        let slab = halo_bytes_per_step(n, p, 1, 3, 8);
        let pencil = halo_bytes_per_step(n, p, 2, 3, 8);
        let block = halo_bytes_per_step(n, p, 3, 3, 8);
        assert!(slab > pencil, "{slab} vs {pencil}");
        assert!(pencil > block, "{pencil} vs {block}");
    }

    #[test]
    fn ratio_falls_with_local_domain_size() {
        // The §3 statement: larger local domains → smaller halo ratio.
        let small = ghost_ratio(48, 64, 3, 3); // 12³ per rank
        let large = ghost_ratio(192, 64, 3, 3); // 48³ per rank
        assert!(large < small, "{large} vs {small}");
    }

    #[test]
    fn d1_split_keeps_halo_constant_per_rank() {
        // The paper's observation about its own benchmark: in a 1-D split
        // the per-rank halo size does not depend on p (two full rows).
        let b8 = halo_bytes_per_step(3744, 8, 1, 2, 24);
        let b64 = halo_bytes_per_step(3744, 64, 1, 2, 24);
        // Shell of a (rows x 3744) slab: 2*(rows+2) + 2*3744 + ... depends
        // mildly on rows through the side columns; the dominant term (the
        // two full rows) is constant. Within 15%:
        assert!((b8 as f64 - b64 as f64).abs() / (b8 as f64) < 0.15);
    }

    #[test]
    fn extents_cover_domain() {
        let e = block_extents(100, 8, 3, 3);
        assert_eq!(e, vec![50, 50, 50]);
        let e = block_extents(100, 8, 1, 3);
        assert_eq!(e, vec![13, 100, 100]);
        let e = block_extents(100, 6, 2, 3);
        assert_eq!(e, vec![34, 50, 100]);
    }

    #[test]
    fn table_has_all_rows() {
        let rows = halo_table(96, &[8, 64], 3);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.ratio > 0.0));
        assert!(rows.iter().all(|r| r.owned >= 1));
    }
}
