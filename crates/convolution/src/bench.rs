//! The distributed convolution benchmark (paper Fig. 4), outlined with the
//! six MPI sections of §5.1: LOAD, SCATTER, CONVOLVE, HALO, GATHER, STORE.
//!
//! The benchmark runs in two fidelity modes:
//!
//! * [`Fidelity::Full`] — image data really moves and the stencil really
//!   executes; the distributed result is bit-identical to the sequential
//!   reference (`Image::mean_filter`). Used by correctness tests.
//! * [`Fidelity::Timing`] — payloads are virtual (sizes only) and compute
//!   is charged to the virtual clock without touching pixels. This is what
//!   lets the paper-scale configuration (5616×3744 doubles, 1000 steps,
//!   456 ranks) run in seconds. Both modes exercise identical MPI call
//!   sequences and identical section structure.

use crate::image::{Image, CHANNELS};
use crate::stencil::{codec_work, convolve_band, convolve_work};
use mpi_sections::SectionRuntime;
use mpisim::{Proc, Src, TagSel};
use std::path::PathBuf;

/// Section labels in program order.
pub const SECTION_LOAD: &str = "LOAD";
pub const SECTION_SCATTER: &str = "SCATTER";
pub const SECTION_CONVOLVE: &str = "CONVOLVE";
pub const SECTION_HALO: &str = "HALO";
pub const SECTION_GATHER: &str = "GATHER";
pub const SECTION_STORE: &str = "STORE";

/// All six benchmark sections, in the order of Fig. 4.
pub const SECTIONS: [&str; 6] = [
    SECTION_LOAD,
    SECTION_SCATTER,
    SECTION_CONVOLVE,
    SECTION_HALO,
    SECTION_GATHER,
    SECTION_STORE,
];

const TAG_UPWARD: i32 = 101; // row travelling to the smaller rank
const TAG_DOWNWARD: i32 = 102; // row travelling to the larger rank

/// Whether pixels really move or only their costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Real data, bit-exact against the sequential reference.
    Full,
    /// Virtual payloads and modelled compute only.
    Timing,
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct ConvConfig {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Number of convolution time steps.
    pub steps: usize,
    /// Data fidelity.
    pub fidelity: Fidelity,
    /// In `Full` mode, write the result image here (rank 0).
    pub store_path: Option<PathBuf>,
}

impl ConvConfig {
    /// The paper's configuration: 5616×3744 RGB doubles, timing fidelity.
    /// The paper runs 1000 steps; pass fewer to trade resolution for time.
    pub fn paper(steps: usize) -> ConvConfig {
        ConvConfig {
            width: 5616,
            height: 3744,
            steps,
            fidelity: Fidelity::Timing,
            store_path: None,
        }
    }

    /// A small full-fidelity configuration for correctness tests.
    pub fn small(width: usize, height: usize, steps: usize) -> ConvConfig {
        ConvConfig {
            width,
            height,
            steps,
            fidelity: Fidelity::Full,
            store_path: None,
        }
    }

    /// Total channel-samples of the image.
    pub fn samples(&self) -> usize {
        self.width * self.height * CHANNELS
    }
}

/// Contiguous row partition: the rows owned by `rank` out of `nranks`.
pub fn partition_rows(height: usize, nranks: usize, rank: usize) -> (usize, usize) {
    let n = nranks.max(1);
    let base = height / n;
    let extra = height % n;
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    (start, start + len)
}

/// Per-rank outcome of a benchmark run.
#[derive(Debug, Clone, Default)]
pub struct ConvOutcome {
    /// The assembled result image (rank 0, `Full` mode only).
    pub image: Option<Image>,
    /// Checksum of the result (rank 0, `Full` mode only).
    pub checksum: Option<f64>,
}

/// Run the benchmark as the SPMD body of a rank. All ranks of the world
/// communicator must call this with the same configuration.
pub fn run_convolution(p: &mut Proc, sections: &SectionRuntime, cfg: &ConvConfig) -> ConvOutcome {
    let world = p.world();
    let nranks = world.size();
    let rank = world.rank();
    let stride = cfg.width * CHANNELS;
    let (row_start, row_end) = partition_rows(cfg.height, nranks, rank);
    let my_rows = row_end - row_start;
    let rows_of = |r: usize| {
        let (s, e) = partition_rows(cfg.height, nranks, r);
        e - s
    };

    // ---- LOAD: decode on rank 0, everyone else passes through. ----------
    let mut full_image: Option<Image> = None;
    sections.scoped(p, &world, SECTION_LOAD, |p| {
        if rank == 0 {
            if cfg.fidelity == Fidelity::Full {
                full_image = Some(Image::synthetic(cfg.width, cfg.height));
            }
            p.compute(codec_work(cfg.samples()));
        }
    });

    // ---- SCATTER: 1-D row split from rank 0. -----------------------------
    let mut band: Vec<f64> = Vec::new();
    sections.scoped(p, &world, SECTION_SCATTER, |p| match cfg.fidelity {
        Fidelity::Full => {
            let chunks = (rank == 0).then(|| {
                let img = full_image.as_ref().expect("root loaded the image");
                (0..nranks)
                    .map(|r| {
                        let (s, e) = partition_rows(cfg.height, nranks, r);
                        img.rows(s, e).to_vec()
                    })
                    .collect::<Vec<Vec<f64>>>()
            });
            band = world.scatterv(p, 0, chunks);
        }
        Fidelity::Timing => {
            let counts =
                (rank == 0).then(|| (0..nranks).map(|r| rows_of(r) * stride).collect::<Vec<_>>());
            let _my_count = world.scatterv_virtual::<f64>(p, 0, counts);
        }
    });

    // ---- Time-step loop: HALO exchange then CONVOLVE. --------------------
    let up = (rank > 0 && my_rows > 0 && rows_of(rank - 1) > 0).then(|| rank - 1);
    let down = (rank + 1 < nranks && my_rows > 0 && rows_of(rank + 1) > 0).then(|| rank + 1);
    let mut halo_top: Option<Vec<f64>> = None;
    let mut halo_bottom: Option<Vec<f64>> = None;

    for _step in 0..cfg.steps {
        sections.scoped(p, &world, SECTION_HALO, |p| {
            match cfg.fidelity {
                Fidelity::Full => {
                    // Exchange with the upper neighbour: my first row goes
                    // up; its last row comes down.
                    if let Some(up) = up {
                        let mine = band[0..stride].to_vec();
                        let got = world.sendrecv(
                            p,
                            up,
                            TAG_UPWARD,
                            &mine,
                            Src::Rank(up),
                            TagSel::Is(TAG_DOWNWARD),
                        );
                        halo_top = Some(got.data);
                    }
                    if let Some(down) = down {
                        let mine = band[(my_rows - 1) * stride..my_rows * stride].to_vec();
                        let got = world.sendrecv(
                            p,
                            down,
                            TAG_DOWNWARD,
                            &mine,
                            Src::Rank(down),
                            TagSel::Is(TAG_UPWARD),
                        );
                        halo_bottom = Some(got.data);
                    }
                }
                Fidelity::Timing => {
                    if let Some(up) = up {
                        let _ = world.sendrecv_virtual::<f64>(
                            p,
                            up,
                            TAG_UPWARD,
                            stride,
                            Src::Rank(up),
                            TagSel::Is(TAG_DOWNWARD),
                        );
                    }
                    if let Some(down) = down {
                        let _ = world.sendrecv_virtual::<f64>(
                            p,
                            down,
                            TAG_DOWNWARD,
                            stride,
                            Src::Rank(down),
                            TagSel::Is(TAG_UPWARD),
                        );
                    }
                }
            }
        });

        sections.scoped(p, &world, SECTION_CONVOLVE, |p| {
            if my_rows > 0 {
                if cfg.fidelity == Fidelity::Full {
                    band = convolve_band(
                        &band,
                        cfg.width,
                        my_rows,
                        halo_top.as_deref(),
                        halo_bottom.as_deref(),
                    );
                }
                p.compute(convolve_work(my_rows * stride));
            }
        });
    }

    // ---- GATHER: collect bands back on rank 0. ----------------------------
    let mut outcome = ConvOutcome::default();
    sections.scoped(p, &world, SECTION_GATHER, |p| match cfg.fidelity {
        Fidelity::Full => {
            let all = world.gatherv(p, 0, std::mem::take(&mut band));
            if rank == 0 {
                let mut img = Image::zeros(cfg.width, cfg.height);
                let mut offset = 0;
                for chunk in all {
                    img.data[offset..offset + chunk.len()].copy_from_slice(&chunk);
                    offset += chunk.len();
                }
                outcome.checksum = Some(img.checksum());
                outcome.image = Some(img);
            }
        }
        Fidelity::Timing => {
            let _ = world.gatherv_virtual::<f64>(p, 0, my_rows * stride);
        }
    });

    // ---- STORE: encode and write on rank 0. -------------------------------
    sections.scoped(p, &world, SECTION_STORE, |p| {
        if rank == 0 {
            p.compute(codec_work(cfg.samples()));
            if let (Some(path), Some(img)) = (&cfg.store_path, &outcome.image) {
                img.write_ppm(path).expect("store the result image");
            }
        }
    });

    outcome
}
