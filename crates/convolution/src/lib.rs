//! # convolution — the paper's §5.1 benchmark
//!
//! An MPI image-convolution benchmark modelling a stencil simulation code:
//! a three-channel image in double precision is scattered row-wise, a 3×3
//! mean filter runs for many time steps with halo-row exchanges between
//! neighbouring ranks, and the result is gathered and stored. Every phase
//! is outlined with an `MPI_Section` (LOAD, SCATTER, CONVOLVE, HALO,
//! GATHER, STORE — Fig. 4 of the paper).
//!
//! Two fidelity modes let the same code serve correctness tests (real
//! pixels, bit-exact against the sequential reference) and the paper-scale
//! scaling study (virtual payloads, modelled compute); see
//! [`bench::Fidelity`].

pub mod bench;
pub mod decomp2d;
pub mod halo;
pub mod image;
pub mod stencil;

pub use bench::{
    partition_rows, run_convolution, ConvConfig, ConvOutcome, Fidelity, SECTIONS, SECTION_CONVOLVE,
    SECTION_GATHER, SECTION_HALO, SECTION_LOAD, SECTION_SCATTER, SECTION_STORE,
};
pub use decomp2d::{run_convolution_2d, Tile};
pub use halo::{ghost_ratio, halo_bytes_per_step, halo_table, HaloRow};
pub use image::{Image, CHANNELS};
pub use stencil::{codec_work, convolve_band, convolve_work};

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sections::{SectionProfiler, SectionRuntime, VerifyMode};
    use mpisim::WorldBuilder;
    use std::sync::Arc;

    fn run_distributed(nranks: usize, cfg: ConvConfig) -> (ConvOutcome, mpi_sections::Profile) {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let profiler = SectionProfiler::new();
        sections.attach(profiler.clone());
        let s = sections.clone();
        let cfg = Arc::new(cfg);
        let report = WorldBuilder::new(nranks)
            .machine(machine::presets::nehalem_cluster())
            .seed(11)
            .tool(sections.clone())
            .run(move |p| run_convolution(p, &s, &cfg))
            .unwrap();
        (
            report.results.into_iter().next().unwrap(),
            profiler.snapshot(),
        )
    }

    #[test]
    fn distributed_matches_sequential_reference_exactly() {
        let cfg = ConvConfig::small(20, 17, 3);
        let reference = Image::synthetic(20, 17).mean_filter(3);
        for nranks in [1usize, 2, 3, 5] {
            let (outcome, _) = run_distributed(nranks, cfg.clone());
            let img = outcome.image.expect("rank 0 has the image");
            assert_eq!(
                img.data, reference.data,
                "p={nranks}: distributed result must be bit-exact"
            );
        }
    }

    #[test]
    fn more_ranks_than_rows() {
        // 23 ranks, 17 rows: tail ranks own zero rows and must still
        // traverse every section (collective consistency).
        let cfg = ConvConfig::small(8, 17, 2);
        let reference = Image::synthetic(8, 17).mean_filter(2);
        let (outcome, profile) = run_distributed(23, cfg);
        assert_eq!(outcome.image.unwrap().data, reference.data);
        // All 23 ranks traversed HALO (even if empty).
        let halo = profile.get_world(SECTION_HALO).unwrap();
        assert_eq!(halo.per_instance[0].count, 23);
    }

    #[test]
    fn all_sections_profiled_in_order() {
        let (_, profile) = run_distributed(4, ConvConfig::small(16, 16, 2));
        for label in SECTIONS {
            let s = profile
                .get_world(label)
                .unwrap_or_else(|| panic!("{label} missing"));
            assert!(s.instances >= 1, "{label}");
        }
        let halo = profile.get_world(SECTION_HALO).unwrap();
        let conv = profile.get_world(SECTION_CONVOLVE).unwrap();
        assert_eq!(halo.instances, 2);
        assert_eq!(conv.instances, 2);
    }

    #[test]
    fn timing_mode_has_same_section_structure() {
        let mut cfg = ConvConfig::small(16, 16, 2);
        cfg.fidelity = Fidelity::Timing;
        let (outcome, profile) = run_distributed(4, cfg);
        assert!(outcome.image.is_none());
        for label in SECTIONS {
            assert!(profile.get_world(label).is_some(), "{label} missing");
        }
    }

    #[test]
    fn partition_covers_all_rows() {
        for height in [1usize, 7, 100, 3744] {
            for nranks in [1usize, 3, 8, 456, 500] {
                let mut covered = 0;
                let mut prev_end = 0;
                for r in 0..nranks {
                    let (s, e) = partition_rows(height, nranks, r);
                    assert_eq!(s, prev_end);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, height, "h={height} n={nranks}");
            }
        }
    }

    #[test]
    fn store_writes_result_to_disk() {
        let dir = std::env::temp_dir().join("convolution-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("result.ppm");
        let mut cfg = ConvConfig::small(12, 12, 1);
        cfg.store_path = Some(path.clone());
        let (_outcome, _) = run_distributed(3, cfg);
        let stored = Image::read_ppm(&path).unwrap();
        assert_eq!(stored.width, 12);
        assert_eq!(stored.height, 12);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sequential_run_has_zero_halo_time() {
        let (_, profile) = run_distributed(1, ConvConfig::small(16, 16, 3));
        let halo = profile.get_world(SECTION_HALO).unwrap();
        // Sections are entered/exited but no message ever moves: the
        // paper's "communication sequential time is null".
        assert!(halo.total_own_secs < 1e-9, "{}", halo.total_own_secs);
    }

    #[test]
    fn convolve_dominates_sequentially_halo_grows_with_p() {
        // The Fig. 5(a) direction at small scale: CONVOLVE share shrinks
        // and HALO total time grows as ranks are added.
        let cfg = || {
            let mut c = ConvConfig::small(64, 64, 10);
            c.fidelity = Fidelity::Timing;
            c
        };
        let (_, p1) = run_distributed(1, cfg());
        let (_, p8) = run_distributed(8, cfg());
        let conv1 = p1.get_world(SECTION_CONVOLVE).unwrap().total_own_secs;
        let halo1 = p1.get_world(SECTION_HALO).unwrap().total_own_secs;
        let halo8 = p8.get_world(SECTION_HALO).unwrap().total_own_secs;
        assert!(conv1 > 0.0);
        assert!(halo1 < 1e-9);
        assert!(halo8 > 0.0, "halo time appears with parallelism");
    }
}
