//! RGB images in double precision, with a tiny PPM codec and the sequential
//! reference convolution.
//!
//! The paper's benchmark loads a 5616×3744 three-channel image stored in
//! double precision and applies a mean filter repeatedly. We cannot ship
//! the original photograph, so [`Image::synthetic`] generates a
//! deterministic test pattern with enough structure for convolution
//! results to be meaningfully checked, and the codec reads/writes binary
//! PPM (P6) so LOAD/STORE exercise a real file round-trip.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Number of channels (fixed: RGB, as in the paper).
pub const CHANNELS: usize = 3;

/// A row-major, channel-interleaved RGB image of `f64` samples in [0, 1].
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Samples: `data[(y*width + x)*3 + c]`.
    pub data: Vec<f64>,
}

impl Image {
    /// An all-zero image.
    pub fn zeros(width: usize, height: usize) -> Image {
        Image {
            width,
            height,
            data: vec![0.0; width * height * CHANNELS],
        }
    }

    /// A deterministic synthetic test pattern (smooth gradients plus a
    /// checkerboard component, different per channel).
    pub fn synthetic(width: usize, height: usize) -> Image {
        let mut img = Image::zeros(width, height);
        for y in 0..height {
            for x in 0..width {
                let fx = x as f64 / width.max(1) as f64;
                let fy = y as f64 / height.max(1) as f64;
                let checker = ((x / 4 + y / 4) % 2) as f64;
                let base = img.index(x, y, 0);
                img.data[base] = 0.5 * fx + 0.25 * checker;
                img.data[base + 1] = 0.5 * fy + 0.25 * (1.0 - checker);
                img.data[base + 2] = 0.25 * (fx + fy) + 0.25 * checker * fy;
            }
        }
        img
    }

    /// Flat index of `(x, y, channel)`.
    #[inline]
    pub fn index(&self, x: usize, y: usize, c: usize) -> usize {
        (y * self.width + x) * CHANNELS + c
    }

    /// Sample with clamped (edge-replicating) coordinates.
    #[inline]
    pub fn sample_clamped(&self, x: isize, y: isize, c: usize) -> f64 {
        let xc = x.clamp(0, self.width as isize - 1) as usize;
        let yc = y.clamp(0, self.height as isize - 1) as usize;
        self.data[self.index(xc, yc, c)]
    }

    /// Total number of samples (width × height × 3).
    pub fn samples(&self) -> usize {
        self.data.len()
    }

    /// Logical size in bytes at double precision.
    pub fn bytes(&self) -> usize {
        self.samples() * std::mem::size_of::<f64>()
    }

    /// The rows `start..end` as a contiguous sample slice.
    pub fn rows(&self, start: usize, end: usize) -> &[f64] {
        &self.data[start * self.width * CHANNELS..end * self.width * CHANNELS]
    }

    /// Simple checksum (mean of all samples) for cross-validation.
    pub fn checksum(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// One step of the 3×3 mean filter over the full image, with clamped
    /// borders — the sequential reference for correctness tests.
    pub fn mean_filter_step(&self) -> Image {
        let mut out = Image::zeros(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                for c in 0..CHANNELS {
                    let mut acc = 0.0;
                    for dy in -1isize..=1 {
                        for dx in -1isize..=1 {
                            acc += self.sample_clamped(x as isize + dx, y as isize + dy, c);
                        }
                    }
                    let idx = out.index(x, y, c);
                    out.data[idx] = acc / 9.0;
                }
            }
        }
        out
    }

    /// `steps` mean-filter iterations (sequential reference).
    pub fn mean_filter(&self, steps: usize) -> Image {
        let mut img = self.clone();
        for _ in 0..steps {
            img = img.mean_filter_step();
        }
        img
    }

    /// Write as binary PPM (P6), quantizing each sample to 8 bits with
    /// clamping to [0, 1].
    pub fn write_ppm(&self, path: &Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        writeln!(w, "P6\n{} {}\n255", self.width, self.height)?;
        let mut row = Vec::with_capacity(self.width * CHANNELS);
        for y in 0..self.height {
            row.clear();
            for x in 0..self.width {
                for c in 0..CHANNELS {
                    let v = self.data[self.index(x, y, c)].clamp(0.0, 1.0);
                    row.push((v * 255.0).round() as u8);
                }
            }
            w.write_all(&row)?;
        }
        w.flush()
    }

    /// Read a binary PPM (P6) written by [`Image::write_ppm`].
    pub fn read_ppm(path: &Path) -> std::io::Result<Image> {
        let file = std::fs::File::open(path)?;
        let mut r = BufReader::new(file);
        let mut header = String::new();
        // Magic, dimensions, maxval — each on its own line as we write them.
        r.read_line(&mut header)?;
        if header.trim() != "P6" {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "not a P6 PPM",
            ));
        }
        let mut dims = String::new();
        r.read_line(&mut dims)?;
        let mut parts = dims.split_whitespace();
        let parse = |s: Option<&str>| -> std::io::Result<usize> {
            s.and_then(|v| v.parse().ok()).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad PPM dimensions")
            })
        };
        let width = parse(parts.next())?;
        let height = parse(parts.next())?;
        let mut maxval = String::new();
        r.read_line(&mut maxval)?;
        let maxval: f64 = maxval
            .trim()
            .parse()
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad PPM maxval"))?;
        let mut raw = vec![0u8; width * height * CHANNELS];
        r.read_exact(&mut raw)?;
        let data = raw.iter().map(|&b| b as f64 / maxval).collect();
        Ok(Image {
            width,
            height,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_and_bounded() {
        let a = Image::synthetic(32, 24);
        let b = Image::synthetic(32, 24);
        assert_eq!(a, b);
        assert!(a.data.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(a.samples(), 32 * 24 * 3);
        assert_eq!(a.bytes(), 32 * 24 * 3 * 8);
    }

    #[test]
    fn clamped_sampling() {
        let img = Image::synthetic(8, 8);
        assert_eq!(img.sample_clamped(-5, 0, 0), img.sample_clamped(0, 0, 0));
        assert_eq!(img.sample_clamped(7, 99, 2), img.sample_clamped(7, 7, 2));
    }

    #[test]
    fn mean_filter_preserves_constant_images() {
        let mut img = Image::zeros(16, 16);
        img.data.iter_mut().for_each(|v| *v = 0.7);
        let out = img.mean_filter(5);
        assert!(out.data.iter().all(|&v| (v - 0.7).abs() < 1e-12));
    }

    #[test]
    fn mean_filter_smooths_checkerboard() {
        let img = Image::synthetic(32, 32);
        let before = variance(&img);
        let after = variance(&img.mean_filter(3));
        assert!(after < before, "filter must reduce variance");
    }

    fn variance(img: &Image) -> f64 {
        let mean = img.checksum();
        img.data
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / img.samples() as f64
    }

    #[test]
    fn mean_filter_approximately_preserves_mean() {
        // Clamped borders re-weight edges slightly; the interior dominates.
        let img = Image::synthetic(64, 64);
        let before = img.checksum();
        let after = img.mean_filter(2).checksum();
        assert!((before - after).abs() < 0.01, "{before} vs {after}");
    }

    #[test]
    fn rows_slicing() {
        let img = Image::synthetic(8, 6);
        let band = img.rows(2, 5);
        assert_eq!(band.len(), 3 * 8 * 3);
        assert_eq!(band[0], img.data[img.index(0, 2, 0)]);
    }

    #[test]
    fn ppm_roundtrip_within_quantization() {
        let dir = std::env::temp_dir().join("convolution-ppm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ppm");
        let img = Image::synthetic(20, 10);
        img.write_ppm(&path).unwrap();
        let back = Image::read_ppm(&path).unwrap();
        assert_eq!(back.width, 20);
        assert_eq!(back.height, 10);
        let max_err = img
            .data
            .iter()
            .zip(back.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err <= 1.0 / 255.0 + 1e-9, "max_err {max_err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_rejects_garbage() {
        let dir = std::env::temp_dir().join("convolution-ppm-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.ppm");
        std::fs::write(&path, b"not a ppm at all").unwrap();
        assert!(Image::read_ppm(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
