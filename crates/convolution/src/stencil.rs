//! The distributed 3×3 mean-filter stencil on a row band, plus the cost
//! model constants shared by both fidelity modes.

use crate::image::CHANNELS;
use machine::Work;

/// Floating-point operations charged per channel-sample per step (9-tap
/// accumulate at 2 flops per tap — the unvectorized inner loop the paper's
/// 5.6 s-per-sweep sequential time implies).
pub const FLOPS_PER_SAMPLE: f64 = 18.0;

/// Memory traffic charged per channel-sample per step (one read stream plus
/// one write stream of doubles).
pub const BYTES_PER_SAMPLE: f64 = 16.0;

/// Cost per channel-sample of the image codec (LOAD decode / STORE encode).
pub const CODEC_FLOPS_PER_SAMPLE: f64 = 10.0;
/// Codec memory traffic per channel-sample.
pub const CODEC_BYTES_PER_SAMPLE: f64 = 10.0;

/// Work of one convolution step over `samples` channel-samples.
pub fn convolve_work(samples: usize) -> Work {
    Work::new(
        samples as f64 * FLOPS_PER_SAMPLE,
        samples as f64 * BYTES_PER_SAMPLE,
    )
}

/// Work of encoding or decoding `samples` channel-samples.
pub fn codec_work(samples: usize) -> Work {
    Work::new(
        samples as f64 * CODEC_FLOPS_PER_SAMPLE,
        samples as f64 * CODEC_BYTES_PER_SAMPLE,
    )
}

/// One 3×3 mean-filter step over a band of `rows` image rows of `width`
/// pixels, given the neighbouring halo rows.
///
/// `top`/`bottom` are the adjacent rows owned by the neighbouring ranks
/// (one row of `width * 3` samples each); `None` at the global image
/// borders, where the filter clamps vertically — so a p-rank run computes
/// *exactly* what the sequential reference computes.
pub fn convolve_band(
    band: &[f64],
    width: usize,
    rows: usize,
    top: Option<&[f64]>,
    bottom: Option<&[f64]>,
) -> Vec<f64> {
    let stride = width * CHANNELS;
    assert_eq!(band.len(), rows * stride, "band size mismatch");
    if let Some(t) = top {
        assert_eq!(t.len(), stride, "top halo size mismatch");
    }
    if let Some(b) = bottom {
        assert_eq!(b.len(), stride, "bottom halo size mismatch");
    }
    let mut out = vec![0.0f64; rows * stride];
    if rows == 0 || width == 0 {
        return out;
    }
    // Resolve the source row for a (possibly out-of-band) row index.
    let row_at = |y: isize| -> &[f64] {
        if y < 0 {
            match top {
                Some(t) => t,
                None => &band[0..stride], // clamp at global top
            }
        } else if y as usize >= rows {
            match bottom {
                Some(b) => b,
                None => &band[(rows - 1) * stride..rows * stride], // global bottom
            }
        } else {
            &band[y as usize * stride..(y as usize + 1) * stride]
        }
    };
    for y in 0..rows as isize {
        let rows3 = [row_at(y - 1), row_at(y), row_at(y + 1)];
        let out_row = &mut out[y as usize * stride..(y as usize + 1) * stride];
        for x in 0..width as isize {
            for c in 0..CHANNELS {
                let mut acc = 0.0;
                for row in rows3 {
                    for dx in -1isize..=1 {
                        let xc = (x + dx).clamp(0, width as isize - 1) as usize;
                        acc += row[xc * CHANNELS + c];
                    }
                }
                out_row[x as usize * CHANNELS + c] = acc / 9.0;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    /// Split an image into bands, convolve each with true halo rows, and
    /// compare against the full-image reference.
    fn banded_equals_reference(width: usize, height: usize, nbands: usize) {
        let img = Image::synthetic(width, height);
        let reference = img.mean_filter_step();
        let stride = width * CHANNELS;
        // Contiguous row split.
        let base = height / nbands;
        let extra = height % nbands;
        let mut start = 0;
        for b in 0..nbands {
            let rows = base + usize::from(b < extra);
            let end = start + rows;
            if rows == 0 {
                continue;
            }
            let band = img.rows(start, end);
            let top = (start > 0).then(|| img.rows(start - 1, start));
            let bottom = (end < height).then(|| img.rows(end, end + 1));
            let out = convolve_band(band, width, rows, top, bottom);
            let expect = reference.rows(start, end);
            for (i, (a, e)) in out.iter().zip(expect.iter()).enumerate() {
                assert!(
                    (a - e).abs() < 1e-12,
                    "band {b} sample {i}: {a} vs {e} (start {start})"
                );
            }
            start = end;
        }
        let _ = stride;
    }

    #[test]
    fn single_band_matches_reference() {
        banded_equals_reference(16, 12, 1);
    }

    #[test]
    fn multi_band_matches_reference() {
        banded_equals_reference(16, 12, 3);
        banded_equals_reference(9, 17, 4);
    }

    #[test]
    fn more_bands_than_even_rows() {
        banded_equals_reference(8, 10, 7);
    }

    #[test]
    fn empty_band_is_empty() {
        let out = convolve_band(&[], 4, 0, None, None);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "band size mismatch")]
    fn size_mismatch_panics() {
        let _ = convolve_band(&[0.0; 10], 4, 1, None, None);
    }

    #[test]
    fn work_constants() {
        let w = convolve_work(100);
        assert_eq!(w.flops, 1800.0);
        assert_eq!(w.bytes, 1600.0);
        let c = codec_work(10);
        assert_eq!(c.flops, 100.0);
        assert_eq!(c.bytes, 100.0);
    }
}
