//! Property tests for the convolution benchmark: the distributed stencil
//! is bit-exact against the sequential reference for arbitrary image
//! shapes, decompositions and step counts.

use convolution::{partition_rows, run_convolution, ConvConfig, Image};
use mpi_sections::{SectionRuntime, VerifyMode};
use mpisim::WorldBuilder;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn distributed_equals_reference(
        width in 3usize..24,
        height in 3usize..24,
        steps in 0usize..4,
        nranks in 1usize..9,
    ) {
        let reference = Image::synthetic(width, height).mean_filter(steps);
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        let cfg = Arc::new(ConvConfig::small(width, height, steps));
        let report = WorldBuilder::new(nranks)
            .machine(machine::presets::nehalem_cluster())
            .seed(99)
            .run(move |p| run_convolution(p, &s, &cfg).image)
            .unwrap();
        let image = report.results[0].clone().expect("rank 0 owns the result");
        prop_assert_eq!(image.data, reference.data);
    }
}

proptest! {
    #[test]
    fn partition_is_contiguous_and_balanced(height in 0usize..10_000, nranks in 1usize..512) {
        let mut prev_end = 0;
        let base = height / nranks;
        for r in 0..nranks {
            let (s, e) = partition_rows(height, nranks, r);
            prop_assert_eq!(s, prev_end);
            prop_assert!(e - s == base || e - s == base + 1);
            prev_end = e;
        }
        prop_assert_eq!(prev_end, height);
    }

    #[test]
    fn mean_filter_is_a_contraction(width in 2usize..32, height in 2usize..32) {
        // The mean filter never expands the value range.
        let img = Image::synthetic(width, height);
        let out = img.mean_filter_step();
        let min = img.data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = img.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &v in &out.data {
            prop_assert!(v >= min - 1e-12 && v <= max + 1e-12);
        }
    }

    #[test]
    fn ppm_roundtrip_quantization_bound(width in 1usize..24, height in 1usize..24, salt in 0u32..1000) {
        let dir = std::env::temp_dir().join("convolution-proptest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("img_{width}x{height}_{salt}.ppm"));
        let img = Image::synthetic(width, height);
        img.write_ppm(&path).unwrap();
        let back = Image::read_ppm(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.width, width);
        prop_assert_eq!(back.height, height);
        for (a, b) in img.data.iter().zip(back.data.iter()) {
            prop_assert!((a - b).abs() <= 0.5 / 255.0 + 1e-9);
        }
    }
}
